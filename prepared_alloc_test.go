package minesweeper

import "testing"

// The prepared-query warm path must run in a constant allocation budget:
// cached indexes are shared, the CDS and the outer algorithm's scratch
// come from pools, and output tuples are carved from flat blocks. The
// budgets below are deliberately tight — a handful of per-run fixtures
// (problem snapshot, result assembly, the emit closure) is all that is
// allowed; anything scaling with probes or constraints is a regression.
const (
	warmStreamBudget  = 8  // empty-result Stream: snapshot + closures
	warmExecuteBudget = 14 // empty-result Execute: + Result assembly
	warmOutputBudget  = 16 // 100-output Stream: + one tuple block
)

func preparedForAlloc(t *testing.T, rTuples, sTuples [][]int) *PreparedQuery {
	t.Helper()
	r, err := NewRelation("R", 2, rTuples)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewRelation("S", 2, sTuples)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"A", "B"}},
		Atom{Rel: s, Vars: []string{"B", "C"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := q.Prepare(&Options{GAO: []string{"A", "B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	// Warm every pool (CDS tree, run scratch, tuple blocks).
	for i := 0; i < 3; i++ {
		if _, err := pq.Execute(); err != nil {
			t.Fatal(err)
		}
	}
	return pq
}

func TestPreparedWarmPathAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budgets measured without -race")
	}
	// Disjoint B values: the join is empty, so the measurement isolates
	// the fixed per-run overhead.
	pq := preparedForAlloc(t, [][]int{{1, 2}, {2, 3}}, [][]int{{9, 9}})

	if got := testing.AllocsPerRun(100, func() {
		if _, err := pq.Stream(func([]int) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}); got > warmStreamBudget {
		t.Errorf("warm Stream: %v allocs/run, budget %d", got, warmStreamBudget)
	}

	if got := testing.AllocsPerRun(100, func() {
		if _, err := pq.Execute(); err != nil {
			t.Fatal(err)
		}
	}); got > warmExecuteBudget {
		t.Errorf("warm Execute: %v allocs/run, budget %d", got, warmExecuteBudget)
	}
}

func TestPreparedWarmPathOutputAllocScaling(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budgets measured without -race")
	}
	// 10×10 outputs through the shared B value: output tuples must be
	// block-allocated, not one allocation each — the budget stays far
	// below the 100+ of a per-tuple scheme.
	var rT, sT [][]int
	for i := 0; i < 10; i++ {
		rT = append(rT, []int{i, 0})
		sT = append(sT, []int{0, i})
	}
	pq := preparedForAlloc(t, rT, sT)
	n := 0
	got := testing.AllocsPerRun(100, func() {
		n = 0
		if _, err := pq.Stream(func([]int) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
	})
	if n != 100 {
		t.Fatalf("join produced %d tuples, want 100", n)
	}
	if got > warmOutputBudget {
		t.Errorf("warm 100-output Stream: %v allocs/run, budget %d", got, warmOutputBudget)
	}
}

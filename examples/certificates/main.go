// Certificates made concrete: this example builds the explicit
// Proposition 2.6 certificate for a join instance, shows that it is
// value-oblivious (any order-preserving rewrite of the data still
// satisfies it), and contrasts its worst-case r·N size with the far
// smaller instance-specific cost Minesweeper actually pays.
//
//	go run ./examples/certificates
package main

import (
	"fmt"
	"log"

	"minesweeper"
)

func main() {
	// An easy instance: two relations whose A-ranges barely interact.
	// The optimal certificate is tiny (a handful of comparisons proves
	// the output), even though N is large.
	const n = 5000
	var rt, st [][]int
	for i := 0; i < n; i++ {
		rt = append(rt, []int{i, i % 7})
		st = append(st, []int{n + i, i % 5}) // A-values disjoint from R's
	}
	// One overlapping pair so the join is non-empty.
	st = append(st, []int{n - 1, (n - 1) % 7})

	r, err := minesweeper.NewRelation("R", 2, rt)
	if err != nil {
		log.Fatal(err)
	}
	s, err := minesweeper.NewRelation("S", 2, st)
	if err != nil {
		log.Fatal(err)
	}
	q, err := minesweeper.NewQuery(
		minesweeper.Atom{Rel: r, Vars: []string{"A", "B"}},
		minesweeper.Atom{Rel: s, Vars: []string{"A", "C"}},
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := minesweeper.Execute(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input N = %d tuples, output Z = %d\n", r.Len()+s.Len(), len(res.Tuples))
	fmt.Printf("Minesweeper probes: %d, FindGaps (measured |C|): %d\n",
		res.Stats.ProbePoints, res.Stats.FindGaps)

	cert, err := minesweeper.FullCertificate(q, res.GAO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nProposition 2.6 worst-case certificate: %d comparisons (≤ r·N = %d)\n",
		cert.Size(), 2*(r.Len()+s.Len()))
	fmt.Printf("Minesweeper's measured cost is %.1fx smaller than the worst-case certificate.\n",
		float64(cert.Size())/float64(res.Stats.FindGaps))

	// Value-obliviousness: certificates constrain order, not values.
	ok, err := cert.SatisfiedByTransform(func(v int) int { return 10*v + 3 })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\norder-preserving rewrite (v ↦ 10v+3) still satisfies: %v\n", ok)
	ok, err = cert.SatisfiedByTransform(func(v int) int { return 1 << 20 >> uint(v%20) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("order-breaking rewrite satisfies: %v\n", ok)

	// A tiny certificate in action (Example B.1): disjoint unary
	// relations — one comparison proves emptiness, and Minesweeper's
	// probe count is O(1) no matter the size.
	var a, b [][]int
	for i := 0; i < n; i++ {
		a = append(a, []int{i})
		b = append(b, []int{n + 1 + i})
	}
	ra, _ := minesweeper.NewRelation("X", 1, a)
	rb, _ := minesweeper.NewRelation("Y", 1, b)
	q2, err := minesweeper.NewQuery(
		minesweeper.Atom{Rel: ra, Vars: []string{"V"}},
		minesweeper.Atom{Rel: rb, Vars: []string{"V"}},
	)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := minesweeper.Execute(q2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExample B.1 (disjoint sets, N = %d): output %d, probes %d — constant-size certificate.\n",
		2*n, len(res2.Tuples), res2.Stats.ProbePoints)
}

// Package relio reads and writes relations in the library's plain-text
// interchange format:
//
//	# comment
//	Name: V1 V2 V3
//	1 2 3
//	4 5 6
//
// The header line gives the relation name and its variable binding; each
// further non-comment line is one tuple of non-negative integers. The
// format round-trips through ReadRelation/WriteRelation and is the format
// accepted by cmd/msjoin.
package relio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Relation is a parsed relation: its name, the variables it binds, and
// its tuples (each of length len(Vars)).
type Relation struct {
	Name   string
	Vars   []string
	Tuples [][]int
}

// maxLine caps how far the scanner buffer may grow for a single input
// line (1 GiB — effectively "any realistic tuple width" while still
// bounding memory against malformed input).
const maxLine = 1 << 30

// ReadRelation parses the text format from r; name is used in error
// messages (typically the file path). Lines may be arbitrarily wide:
// the scan buffer starts small and grows on demand up to maxLine, and a
// line exceeding even that cap is reported with its line number rather
// than as a bare bufio.ErrTooLong.
func ReadRelation(r io.Reader, name string) (*Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	out := &Relation{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if out.Name == "" {
			head, rest, found := strings.Cut(line, ":")
			if !found {
				return nil, fmt.Errorf("%s:%d: header must be 'Name: V1 V2 …'", name, lineNo)
			}
			out.Name = strings.TrimSpace(head)
			out.Vars = strings.Fields(rest)
			if out.Name == "" || len(out.Vars) == 0 {
				return nil, fmt.Errorf("%s:%d: empty name or variable list", name, lineNo)
			}
			seen := map[string]bool{}
			for _, v := range out.Vars {
				if seen[v] {
					return nil, fmt.Errorf("%s:%d: repeated variable %q", name, lineNo, v)
				}
				seen[v] = true
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != len(out.Vars) {
			return nil, fmt.Errorf("%s:%d: %d values, want %d", name, lineNo, len(fields), len(out.Vars))
		}
		tup := make([]int, len(fields))
		for i, fv := range fields {
			v, err := strconv.Atoi(fv)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("%s:%d: bad value %q (want non-negative integer)", name, lineNo, fv)
			}
			tup[i] = v
		}
		out.Tuples = append(out.Tuples, tup)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("%s:%d: line exceeds %d bytes: %w", name, lineNo+1, maxLine, err)
		}
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if out.Name == "" {
		return nil, fmt.Errorf("%s: missing header line", name)
	}
	return out, nil
}

// WriteRelation emits the text format. Output round-trips through
// ReadRelation.
func WriteRelation(w io.Writer, rel *Relation) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s: %s\n", rel.Name, strings.Join(rel.Vars, " ")); err != nil {
		return err
	}
	for _, tup := range rel.Tuples {
		if len(tup) != len(rel.Vars) {
			return fmt.Errorf("relio: tuple %v has %d values, want %d", tup, len(tup), len(rel.Vars))
		}
		for i, v := range tup {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(v)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Package shard splits data ownership from probe execution: it
// partitions catalog relations into N goroutine-owned fragments — each
// with its own index caches, mutation epoch and WAL directory — and
// runs scatter-gather streaming joins across them, merging the
// per-shard GAO-lex-ordered substreams with a loser tree so the fused
// stream is byte-identical to an unsharded run.
//
// The partitioning invariant the executor relies on is purely
// content-based: every stored copy of a tuple lives in exactly the
// shard its partition-column value routes to, so identical rows always
// colocate. Under that invariant, slicing a single atom of a query
// across the fragments enumerates every result assignment exactly once
// (its witnessing row in the sliced atom lives in exactly one
// fragment), and the merged union of per-shard streams is exactly the
// unsharded stream.
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"minesweeper/internal/planner"
)

// Partition records how one relation's tuples are divided across the
// shard set: the routing column, the mode, and — for range mode — the
// n-1 ascending split points (shard i owns values < Splits[i], the last
// shard owns the tail).
type Partition struct {
	Column int    `json:"column"`
	Attr   string `json:"attr,omitempty"`
	Mode   string `json:"mode"` // "hash" or "range"
	Splits []int  `json:"splits,omitempty"`
}

// Route returns the shard index owning a tuple whose partition column
// holds v.
func (p Partition) Route(v, shards int) int {
	if p.Mode == ModeRange {
		return sort.SearchInts(p.Splits, v+1)
	}
	return hashRoute(v, shards)
}

// String renders the partition for plan output: "attr:mode".
func (p Partition) String() string {
	attr := p.Attr
	if attr == "" {
		attr = "#" + strconv.Itoa(p.Column)
	}
	return attr + ":" + p.Mode
}

// Partition modes.
const (
	ModeHash  = "hash"
	ModeRange = "range"
)

// hashRoute buckets a value with FNV-1a over its 8 little-endian
// bytes — stable across processes (recovery re-routes to the same
// shard) and well-mixed for strided integer domains, where v % n would
// alias the stride.
func hashRoute(v, shards int) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= prime
		u >>= 8
	}
	return int(h % uint64(shards))
}

// choosePartition picks the partition for a relation snapshot: the
// planner names the column (leading attribute of the single-atom GAO)
// and gates range mode; range splits are the column's n-quantiles,
// deduplicated to a strictly increasing list. When deduplication leaves
// no usable split the partition falls back to hash.
func choosePartition(attrs []string, tuples [][]int, shards int) Partition {
	arity := len(attrs)
	st := planner.Collect(tuples, arity)
	pc := planner.ChoosePartition(attrs, st, shards)
	p := Partition{Column: pc.Col, Attr: pc.Attr, Mode: ModeHash}
	if pc.Range {
		if splits := quantileSplits(tuples, pc.Col, shards); len(splits) > 0 {
			p.Mode, p.Splits = ModeRange, splits
		}
	}
	return p
}

// quantileSplits returns up to shards-1 strictly increasing split
// points dividing the column's stored values into near-equal runs.
func quantileSplits(tuples [][]int, col, shards int) []int {
	if len(tuples) == 0 || shards <= 1 {
		return nil
	}
	vals := make([]int, len(tuples))
	for i, tup := range tuples {
		vals[i] = tup[col]
	}
	sort.Ints(vals)
	splits := make([]int, 0, shards-1)
	for i := 1; i < shards; i++ {
		s := vals[i*len(vals)/shards]
		if len(splits) == 0 || s > splits[len(splits)-1] {
			splits = append(splits, s)
		}
	}
	return splits
}

// split routes a tuple batch into per-shard buckets.
func (p Partition) split(tuples [][]int, shards int) [][][]int {
	buckets := make([][][]int, shards)
	for _, tup := range tuples {
		s := p.Route(tup[p.Column], shards)
		buckets[s] = append(buckets[s], tup)
	}
	return buckets
}

// fingerprint is the routing-equivalence key: two partitions with equal
// fingerprints route every value identically, so a prepared scatter
// plan stays valid across mutations that re-chose an equal partition.
func (p Partition) fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:%s", p.Column, p.Mode)
	for _, s := range p.Splits {
		fmt.Fprintf(&b, ",%d", s)
	}
	return b.String()
}

// Command msserve exposes the minesweeper join library as a long-lived
// HTTP service: load relations in the relio text format, mutate them in
// place, register named prepared queries, and execute them with
// streaming NDJSON responses — the serving-side counterpart to the
// anytime, certificate-driven evaluation the library implements.
//
// Endpoints:
//
//	GET    /relations               list relations (name, vars, tuples, epoch)
//	POST   /relations               load a relation (relio text body; replaces same-arity duplicates)
//	GET    /relations/{name}        dump a relation in relio format
//	DELETE /relations/{name}        drop a relation
//	POST   /relations/{name}/insert add tuples              {"tuples": [[1,2], …]}
//	POST   /relations/{name}/delete remove tuples           {"tuples": [[1,2], …]}
//	GET    /queries                 list registered queries
//	POST   /queries                 register a prepared query {"name":…, "query":"R(A,B), S(B,C)", …}
//	DELETE /queries/{name}          unregister
//	GET    /queries/{name}/run      execute; ?limit=&timeout=&engine=&workers=
//	POST   /query                   one-shot query (spec + limit/timeout in the body)
//	GET    /stats                   aggregate certificate/output counters
//
// Run responses are NDJSON: a header line with the output variable
// order, one JSON array per tuple (streamed as the engine finds them),
// and a footer line with the run's stats. A timeout ends the stream
// early but cleanly: the tuples already found are on the wire and the
// footer says "timed_out": true.
//
// Usage:
//
//	msserve [-addr :8080] [relation files…]
//
// Relation files given on the command line are preloaded into the
// catalog at startup.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"minesweeper/internal/catalog"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	cat := catalog.New()
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msserve: %v\n", err)
			os.Exit(1)
		}
		info, err := cat.Load(f, path)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "msserve: %v\n", err)
			os.Exit(1)
		}
		log.Printf("loaded %s: %d tuples over %v", info.Name, info.Tuples, info.Vars)
	}

	srv := newServer(cat)
	log.Printf("msserve listening on %s (%d relations preloaded)", *addr, cat.Len())
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}

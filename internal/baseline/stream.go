package baseline

import (
	"context"
	"errors"

	"minesweeper/internal/certificate"
)

// errStop is the internal sentinel used to unwind a backtracking search
// when the emit callback asks for early termination. It never escapes
// the package: the stream entry points translate it to a nil error.
var errStop = errors.New("baseline: stop enumeration")

// sweep translates the sentinel protocol at a stream entry point.
func sweep(err error) error {
	if errors.Is(err, errStop) {
		return nil
	}
	return err
}

// emitSorted streams an already-sorted materialized result through emit,
// counting outputs and honoring cancellation. It is the adapter that
// gives the materializing engines (Yannakakis, the pairwise hash plans)
// the same limit/cancellation surface as the streaming ones: early
// termination saves the emission, not the evaluation, which is exactly
// the anytime behaviour a materializing plan lacks (Section 1).
func emitSorted(ctx context.Context, tuples [][]int, stats *certificate.Stats, emit func([]int) bool) error {
	for _, t := range tuples {
		if err := ctx.Err(); err != nil {
			return err
		}
		if stats != nil {
			stats.Outputs++
		}
		if !emit(t) {
			return nil
		}
	}
	return nil
}

package ordered

// DyadicTree is the dyadic interval tree of Appendix L.1. It indexes a
// binary tree over the key domain [0, Capacity): node x covers the dyadic
// key range [x.Lo, x.Hi], leaves cover single keys, and every node carries a
// RangeSet over a second (value) domain. The tree maintains the invariant
//
//	I(x) = I(x∘0) ∩ I(x∘1)
//
// for every internal node x (equation (7) of the paper): a value range is
// recorded at an internal node exactly when it is covered at every key of
// the node's dyadic key range. Insertions happen at leaves and "float up"
// by intersecting with the sibling, giving the O(M log³ N) total insertion
// bound of Proposition L.1.
//
// The triangle-query CDS uses keys for the B attribute and values for the
// C attribute: a constraint ⟨*, b, (c1,c2)⟩ is a leaf insertion at key b.
type DyadicTree struct {
	root     *DyadicNode
	capacity int
	inserts  int
	floatups int
}

// DyadicNode is a node of a DyadicTree covering keys [Lo, Hi].
type DyadicNode struct {
	Lo, Hi      int
	Set         *RangeSet
	parent      *DyadicNode
	left, right *DyadicNode
	cache       map[int]int // per-probe-context memoization (Algorithm 10's Cache)
}

// NewDyadicTree returns a tree over keys [0, capacity); capacity is rounded
// up to a power of two (minimum 1).
func NewDyadicTree(capacity int) *DyadicTree {
	c := 1
	for c < capacity {
		c *= 2
	}
	t := &DyadicTree{capacity: c}
	t.root = &DyadicNode{Lo: 0, Hi: c - 1, Set: NewRangeSet()}
	return t
}

// Capacity returns the (rounded) key capacity.
func (t *DyadicTree) Capacity() int { return t.capacity }

// Root returns the root node (covering all keys).
func (t *DyadicTree) Root() *DyadicNode { return t.root }

// Inserts returns the number of leaf insertions performed.
func (t *DyadicTree) Inserts() int { return t.inserts }

// FloatUps returns the number of range pieces propagated toward the root,
// the quantity bounded by Proposition L.1.
func (t *DyadicTree) FloatUps() int { return t.floatups }

// IsLeaf reports whether the node covers a single key.
func (n *DyadicNode) IsLeaf() bool { return n.Lo == n.Hi }

// Left returns the left child, or nil if it has never been materialized.
// A missing child is semantically a node with an empty RangeSet.
func (n *DyadicNode) Left() *DyadicNode { return n.left }

// Right returns the right child, or nil if it has never been materialized.
func (n *DyadicNode) Right() *DyadicNode { return n.right }

// Cache returns the memoized value stored under probe context key, or
// def when absent (Algorithm 10's GetCache).
func (n *DyadicNode) Cache(key, def int) int {
	if n.cache == nil {
		return def
	}
	if v, ok := n.cache[key]; ok {
		return v
	}
	return def
}

// SetCache memoizes v under probe context key (Algorithm 10's Cache).
func (n *DyadicNode) SetCache(key, v int) {
	if n.cache == nil {
		n.cache = make(map[int]int)
	}
	n.cache[key] = v
}

func (t *DyadicTree) child(n *DyadicNode, right bool) *DyadicNode {
	mid := n.Lo + (n.Hi-n.Lo)/2
	if right {
		if n.right == nil {
			n.right = &DyadicNode{Lo: mid + 1, Hi: n.Hi, Set: NewRangeSet(), parent: n}
		}
		return n.right
	}
	if n.left == nil {
		n.left = &DyadicNode{Lo: n.Lo, Hi: mid, Set: NewRangeSet(), parent: n}
	}
	return n.left
}

// Leaf returns the leaf node for key, materializing the path to it.
// Key must lie in [0, Capacity).
func (t *DyadicTree) Leaf(key int) *DyadicNode {
	n := t.root
	for !n.IsLeaf() {
		mid := n.Lo + (n.Hi-n.Lo)/2
		n = t.child(n, key > mid)
	}
	return n
}

// Descend returns the child of n whose key range contains key,
// materializing it if necessary.
func (t *DyadicTree) Descend(n *DyadicNode, key int) *DyadicNode {
	mid := n.Lo + (n.Hi-n.Lo)/2
	return t.child(n, key > mid)
}

// sibling returns n's sibling, which may be nil (semantically empty).
func sibling(n *DyadicNode) *DyadicNode {
	p := n.parent
	if p == nil {
		return nil
	}
	if p.left == n {
		return p.right
	}
	return p.left
}

// InsertAtKey records that, for this key, all values in the closed range
// [lo, hi] are covered. It inserts at the leaf and floats newly covered
// pieces up the tree, preserving the intersection invariant.
func (t *DyadicTree) InsertAtKey(key, lo, hi int) {
	if lo > hi {
		return
	}
	t.inserts++
	leaf := t.Leaf(key)
	fresh := insertNew(leaf.Set, Range{lo, hi})
	t.floatUp(leaf, fresh)
}

// InsertOpenAtKey records the open interval (l, r) of values at key.
func (t *DyadicTree) InsertOpenAtKey(key, l, r int) {
	rg := OpenToRange(l, r)
	t.InsertAtKey(key, rg.Lo, rg.Hi)
}

// MarkKeyRangeFull records that for every key of [keyLo, keyHi] the whole
// value domain is covered. It is used for footnote 15 of the paper: when a
// wildcard B-interval constraint arrives, every dyadic node inside it
// becomes fully covered. The given key range is decomposed into O(log N)
// maximal dyadic nodes; each gets a full value range, then floats up.
func (t *DyadicTree) MarkKeyRangeFull(keyLo, keyHi int) {
	if keyLo < 0 {
		keyLo = 0
	}
	if keyHi > t.capacity-1 {
		keyHi = t.capacity - 1
	}
	if keyLo > keyHi {
		return
	}
	t.markFull(t.root, keyLo, keyHi)
}

func (t *DyadicTree) markFull(n *DyadicNode, keyLo, keyHi int) {
	if keyHi < n.Lo || keyLo > n.Hi {
		return
	}
	if keyLo <= n.Lo && n.Hi <= keyHi {
		fresh := insertNew(n.Set, Range{NegInf, PosInf})
		t.floatUp(n, fresh)
		return
	}
	t.markFull(t.child(n, false), keyLo, keyHi)
	t.markFull(t.child(n, true), keyLo, keyHi)
}

// insertNew inserts r into s and returns the sub-ranges of r that were not
// previously covered (the genuinely new coverage).
func insertNew(s *RangeSet, r Range) []Range {
	if r.Empty() {
		return nil
	}
	fresh := s.Gaps(r.Lo, r.Hi)
	if len(fresh) > 0 {
		s.Insert(r.Lo, r.Hi)
	}
	return fresh
}

// floatUp propagates freshly covered value ranges at node n toward the
// root: a piece reaches the parent exactly where the sibling also covers
// it. Each propagated piece is charged to the insertion that created it.
func (t *DyadicTree) floatUp(n *DyadicNode, fresh []Range) {
	for n.parent != nil && len(fresh) > 0 {
		sib := sibling(n)
		if sib == nil {
			return // sibling empty: nothing reaches the parent
		}
		var up []Range
		for _, r := range fresh {
			for _, piece := range sib.Set.Within(r.Lo, r.Hi) {
				up = append(up, insertNew(n.parent.Set, piece)...)
				t.floatups++
			}
		}
		n, fresh = n.parent, up
	}
}

// NextSibling returns the next node in pre-order among same-depth subtree
// roots: the right sibling of the lowest ancestor (including n itself)
// that is a left child. It returns nil when n is on the all-right spine
// (Algorithm 10's NextSibling).
func (t *DyadicTree) NextSibling(n *DyadicNode) *DyadicNode {
	for n.parent != nil {
		p := n.parent
		if p.left == n {
			return t.child(p, true)
		}
		n = p
	}
	return nil
}

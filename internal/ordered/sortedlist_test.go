package ordered

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func checkAVL[V any](t *testing.T, s *SortedList[V]) {
	t.Helper()
	var walk func(n *avlNode[V]) (int, int, int, bool) // height, min, max, ok
	walk = func(n *avlNode[V]) (int, int, int, bool) {
		if n == nil {
			return 0, 0, 0, true
		}
		hl, minl, maxl, okl := walk(n.left)
		hr, minr, maxr, okr := walk(n.right)
		if !okl || !okr {
			return 0, 0, 0, false
		}
		if n.left != nil && maxl >= n.key {
			t.Fatalf("BST order violated at key %d (left max %d)", n.key, maxl)
		}
		if n.right != nil && minr <= n.key {
			t.Fatalf("BST order violated at key %d (right min %d)", n.key, minr)
		}
		if hl-hr > 1 || hr-hl > 1 {
			t.Fatalf("AVL balance violated at key %d (%d vs %d)", n.key, hl, hr)
		}
		h := hl
		if hr > h {
			h = hr
		}
		if n.height != h+1 {
			t.Fatalf("stale height at key %d", n.key)
		}
		mn, mx := n.key, n.key
		if n.left != nil {
			mn = minl
		}
		if n.right != nil {
			mx = maxr
		}
		return h + 1, mn, mx, true
	}
	walk(s.root)
}

func TestSortedListBasic(t *testing.T) {
	s := NewSortedList[string]()
	if s.Len() != 0 {
		t.Fatalf("expected empty list")
	}
	if !s.Insert(5, "five") || !s.Insert(1, "one") || !s.Insert(9, "nine") {
		t.Fatalf("fresh inserts should report true")
	}
	if s.Insert(5, "FIVE") {
		t.Fatalf("duplicate insert should report false")
	}
	if v, ok := s.Find(5); !ok || v != "FIVE" {
		t.Fatalf("Find(5) = %q, %v", v, ok)
	}
	if _, ok := s.Find(7); ok {
		t.Fatalf("Find(7) should miss")
	}
	if k, _, ok := s.FindLub(2); !ok || k != 5 {
		t.Fatalf("FindLub(2) = %d, %v", k, ok)
	}
	if k, _, ok := s.FindLub(5); !ok || k != 5 {
		t.Fatalf("FindLub(5) = %d, %v", k, ok)
	}
	if _, _, ok := s.FindLub(10); ok {
		t.Fatalf("FindLub(10) should miss")
	}
	if k, _, ok := s.FindGlb(2); !ok || k != 1 {
		t.Fatalf("FindGlb(2) = %d, %v", k, ok)
	}
	if _, _, ok := s.FindGlb(0); ok {
		t.Fatalf("FindGlb(0) should miss")
	}
	if k, _, ok := s.Min(); !ok || k != 1 {
		t.Fatalf("Min = %d, %v", k, ok)
	}
	if k, _, ok := s.Max(); !ok || k != 9 {
		t.Fatalf("Max = %d, %v", k, ok)
	}
	if !s.Delete(5) || s.Delete(5) {
		t.Fatalf("Delete semantics wrong")
	}
	if got := s.Keys(); len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Fatalf("Keys = %v", got)
	}
	checkAVL(t, s)
}

func TestSortedListEmptyQueries(t *testing.T) {
	s := NewSortedList[int]()
	if _, _, ok := s.Min(); ok {
		t.Fatal("Min on empty should miss")
	}
	if _, _, ok := s.Max(); ok {
		t.Fatal("Max on empty should miss")
	}
	if _, _, ok := s.FindLub(0); ok {
		t.Fatal("FindLub on empty should miss")
	}
	if _, _, ok := s.FindGlb(0); ok {
		t.Fatal("FindGlb on empty should miss")
	}
	if s.Delete(3) {
		t.Fatal("Delete on empty should report false")
	}
	if got := s.DeleteInterval(NegInf, PosInf); len(got) != 0 {
		t.Fatalf("DeleteInterval on empty = %v", got)
	}
}

func TestSortedListDeleteInterval(t *testing.T) {
	s := NewSortedList[int]()
	for _, k := range []int{1, 3, 5, 7, 9, 11} {
		s.Insert(k, k*10)
	}
	removed := s.DeleteInterval(3, 9) // open: removes 5, 7
	if len(removed) != 2 || removed[0] != 5 || removed[1] != 7 {
		t.Fatalf("removed = %v", removed)
	}
	if got := s.Keys(); len(got) != 4 {
		t.Fatalf("keys after delete = %v", got)
	}
	// Sentinel endpoints.
	removed = s.DeleteInterval(NegInf, 3)
	if len(removed) != 1 || removed[0] != 1 {
		t.Fatalf("removed = %v", removed)
	}
	removed = s.DeleteInterval(9, PosInf)
	if len(removed) != 1 || removed[0] != 11 {
		t.Fatalf("removed = %v", removed)
	}
	if got := s.Keys(); len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Fatalf("keys = %v", got)
	}
	checkAVL(t, s)
}

func TestSortedListAscend(t *testing.T) {
	s := NewSortedList[int]()
	for _, k := range []int{4, 2, 8, 6, 0} {
		s.Insert(k, k)
	}
	var got []int
	s.Ascend(func(k, _ int) bool {
		got = append(got, k)
		return true
	})
	want := []int{0, 2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("Ascend = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ascend = %v", got)
		}
	}
	got = got[:0]
	s.AscendFrom(4, func(k, _ int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != 4 || got[2] != 8 {
		t.Fatalf("AscendFrom = %v", got)
	}
	// Early stop.
	got = got[:0]
	s.Ascend(func(k, _ int) bool {
		got = append(got, k)
		return len(got) < 2
	})
	if len(got) != 2 {
		t.Fatalf("early stop failed: %v", got)
	}
}

// TestSortedListAgainstReference drives the AVL tree with random operations
// and compares every query against a simple sorted-slice reference.
func TestSortedListAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSortedList[int]()
	ref := map[int]int{}
	refKeys := func() []int {
		ks := make([]int, 0, len(ref))
		for k := range ref {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		return ks
	}
	for step := 0; step < 5000; step++ {
		k := rng.Intn(200)
		switch rng.Intn(4) {
		case 0:
			s.Insert(k, step)
			ref[k] = step
		case 1:
			got := s.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, k, got, want)
			}
			delete(ref, k)
		case 2:
			v, ok := s.Find(k)
			wv, wok := ref[k]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("step %d: Find(%d) = %d,%v want %d,%v", step, k, v, ok, wv, wok)
			}
		case 3:
			gk, _, gok := s.FindLub(k)
			var wk int
			wok := false
			for _, rk := range refKeys() {
				if rk >= k {
					wk, wok = rk, true
					break
				}
			}
			if gok != wok || (gok && gk != wk) {
				t.Fatalf("step %d: FindLub(%d) = %d,%v want %d,%v", step, k, gk, gok, wk, wok)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(ref))
		}
	}
	checkAVL(t, s)
}

// TestSortedListQuickBalanced property-tests that any insertion sequence
// leaves a balanced tree containing exactly the distinct keys.
func TestSortedListQuickBalanced(t *testing.T) {
	f := func(keys []int16) bool {
		s := NewSortedList[struct{}]()
		seen := map[int]bool{}
		for _, k16 := range keys {
			k := int(k16)
			s.Insert(k, struct{}{})
			seen[k] = true
		}
		if s.Len() != len(seen) {
			return false
		}
		got := s.Keys()
		if !sort.IntsAreSorted(got) {
			return false
		}
		for _, k := range got {
			if !seen[k] {
				return false
			}
		}
		// Height must be O(log n) for an AVL tree: 1.45*log2(n+2).
		if s.root != nil {
			n := float64(s.Len())
			limit := 1
			for f := n + 2; f > 1; f /= 2 {
				limit++
			}
			if s.root.height > 2*limit+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedListDeleteIntervalQuick(t *testing.T) {
	f := func(keys []uint8, l, r uint8) bool {
		lo, hi := int(l), int(r)
		if lo > hi {
			lo, hi = hi, lo
		}
		s := NewSortedList[struct{}]()
		seen := map[int]bool{}
		for _, k := range keys {
			s.Insert(int(k), struct{}{})
			seen[int(k)] = true
		}
		removed := s.DeleteInterval(lo, hi)
		for _, k := range removed {
			if !(lo < k && k < hi) || !seen[k] {
				return false
			}
			delete(seen, k)
		}
		for k := range seen {
			if lo < k && k < hi {
				return false // should have been removed
			}
			if _, ok := s.Find(k); !ok {
				return false
			}
		}
		return s.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

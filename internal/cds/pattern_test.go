package cds

import (
	"testing"

	"minesweeper/internal/ordered"
)

func TestCompString(t *testing.T) {
	if Star.String() != "*" || Eq(7).String() != "=7" {
		t.Fatal("Comp.String wrong")
	}
}

func TestPatternBasics(t *testing.T) {
	p := Pattern{Eq(2), Star, Eq(7)}
	if p.EqCount() != 2 {
		t.Fatalf("EqCount = %d", p.EqCount())
	}
	if p.LastEqPos() != 3 {
		t.Fatalf("LastEqPos = %d", p.LastEqPos())
	}
	if (Pattern{Star, Star}).LastEqPos() != 0 {
		t.Fatal("all-star LastEqPos should be 0")
	}
	if (Pattern{}).LastEqPos() != 0 {
		t.Fatal("empty LastEqPos should be 0")
	}
	if p.String() != "<=2,*,=7>" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPatternMatches(t *testing.T) {
	p := Pattern{Eq(2), Star, Eq(7)}
	if !p.Matches([]int{2, 99, 7}) {
		t.Fatal("should match")
	}
	if p.Matches([]int{2, 99, 8}) || p.Matches([]int{3, 99, 7}) {
		t.Fatal("should not match")
	}
	if p.Matches([]int{2, 99}) {
		t.Fatal("short prefix should not match")
	}
	if !p.Matches([]int{2, 99, 7, 123}) {
		t.Fatal("longer prefix matches on its prefix")
	}
	if !(Pattern{}).Matches(nil) {
		t.Fatal("empty pattern matches everything")
	}
}

func TestSpecialization(t *testing.T) {
	// Figure 4 of the paper: <3,*,10> ⪯ <*,*,10>.
	u := Pattern{Eq(3), Star, Eq(10)}
	v := Pattern{Star, Star, Eq(10)}
	if !u.SpecializationOf(v) {
		t.Fatal("<3,*,10> should specialize <*,*,10>")
	}
	if v.SpecializationOf(u) {
		t.Fatal("<*,*,10> should not specialize <3,*,10>")
	}
	if !u.SpecializationOf(u) {
		t.Fatal("reflexivity")
	}
	if u.SpecializationOf(Pattern{Eq(3), Star}) {
		t.Fatal("length mismatch must be false")
	}
	w := Pattern{Eq(4), Star, Eq(10)}
	if u.SpecializationOf(w) || w.SpecializationOf(u) {
		t.Fatal("conflicting equalities are incomparable")
	}
}

func TestMeet(t *testing.T) {
	a := Pattern{Eq(1), Star, Star}
	b := Pattern{Star, Eq(5), Star}
	m := Meet(a, b)
	want := Pattern{Eq(1), Eq(5), Star}
	if !patternsEqual(m, want) {
		t.Fatalf("Meet = %v", m)
	}
	if !m.SpecializationOf(a) || !m.SpecializationOf(b) {
		t.Fatal("meet must specialize both")
	}
	// Meet with identical equalities.
	m2 := Meet(a, Pattern{Eq(1), Eq(2), Star})
	if !patternsEqual(m2, Pattern{Eq(1), Eq(2), Star}) {
		t.Fatalf("Meet = %v", m2)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting meet must panic")
		}
	}()
	Meet(Pattern{Eq(1)}, Pattern{Eq(2)})
}

func TestConstraintCovers(t *testing.T) {
	c := Constraint{Prefix: Pattern{Eq(2)}, Lo: 5, Hi: 9}
	if !c.Covers([]int{2, 7}) || !c.Covers([]int{2, 6, 99}) {
		t.Fatal("should cover")
	}
	if c.Covers([]int{2, 5}) || c.Covers([]int{2, 9}) || c.Covers([]int{3, 7}) {
		t.Fatal("open endpoints / wrong prefix must not cover")
	}
	if c.Covers([]int{2}) {
		t.Fatal("short tuple must not cover")
	}
	inf := Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 3}
	if !inf.Covers([]int{-1}) || !inf.Covers([]int{2}) || inf.Covers([]int{3}) {
		t.Fatal("sentinel interval coverage wrong")
	}
	if !(Constraint{Prefix: Pattern{}, Lo: 4, Hi: 5}).Empty() {
		t.Fatal("(4,5) must be empty")
	}
	if (Constraint{Prefix: Pattern{}, Lo: 4, Hi: 6}).Empty() {
		t.Fatal("(4,6) contains 5")
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{Prefix: Pattern{Eq(1), Star}, Lo: ordered.NegInf, Hi: 7}
	if got := c.String(); got != "<=1,*>(-inf,7)" {
		t.Fatalf("String = %q", got)
	}
}

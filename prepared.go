package minesweeper

import (
	"context"
	"fmt"
	"sync"

	"minesweeper/internal/core"
	"minesweeper/internal/engine"
	"minesweeper/internal/planner"
	"minesweeper/internal/reltree"
)

// PreparedQuery is a query bound to a global attribute order and an
// engine, with every relation's search-tree index already built. Prepare
// once, execute many times: re-executions skip GAO planning, column
// permutation, sorting and index construction entirely, which is the
// difference between Õ(N log N) and O(#atoms) of setup per query on a
// served workload.
//
// When Options.GAO is empty the order is chosen by the data-aware
// planner: per-column statistics (cached on the relations) feed a cost
// model over elimination-width-feasible candidate orders. Sparse
// attributes are additionally rank-encoded through order-preserving
// dictionaries (see DictMode). Explain reports the resulting plan.
//
// A PreparedQuery is safe for concurrent use: each run operates on a
// snapshot whose tree views carry run-local state.
//
// A PreparedQuery stays bound to its relations across mutations: every
// execution compares the epoch each relation had at binding time with
// its current epoch, and when a relation has been mutated (Insert,
// Delete, Replace) the query transparently re-plans and re-binds before
// running — the caller never re-prepares by hand. Re-planning recosts
// the GAO from fresh statistics (a forced Options.GAO is kept as-is);
// when the chosen order is unchanged, re-binding pulls indexes from the
// relations' caches, so only the mutated relations pay an index rebuild
// and executions against unmutated relations keep the zero-rebuild warm
// path.
type PreparedQuery struct {
	query  *Query
	opts   Options
	eng    Engine
	runner engine.Engine

	mu  sync.Mutex
	cur *prepState
}

// prepState is one epoch-stamped materialization of the full plan: the
// resolved order and its planning verdict, the shaping plan, the
// optional dictionaries, and the assembled problem with the epochs its
// indexes reflect.
type prepState struct {
	gao        []string // reported GAO over the query variables
	ext        []string // internal evaluation order: hidden constants + gao
	outVars    []string
	shape      *engine.Shape
	dicts      *core.DictSet // nil or per-ext-position dictionaries
	width      int
	cost       float64
	planned    bool // the cost model overrode the structural order
	planForced bool // Options.GAO pinned the order (never re-planned)
	problem    *core.Problem
	epochs     []uint64
}

// binding is the bind result: the assembled problem plus, per atom, the
// epoch its relation had when the atom's index was fetched, and the
// dictionaries the indexes were encoded under (nil when raw).
type binding struct {
	problem *core.Problem
	epochs  []uint64
	dicts   *core.DictSet
}

// prepState resolves the full plan for the options: GAO (planned or
// forced), shaping, dictionary selection, and index binding. prev (the
// state being replaced on a re-plan, nil at first Prepare) lets the
// dictionary bind path reuse dictionaries and encoded trees that the
// mutation provably did not touch.
func (q *Query) prepState(o *Options, prev *prepState) (*prepState, error) {
	st := &prepState{}
	atoms := q.plannerAtoms()
	if len(o.GAO) > 0 {
		st.gao = o.GAO
		st.planForced = true
		if w, err := q.hg.EliminationWidth(st.gao); err == nil {
			st.width = w
			st.cost = planner.CostOf(atoms, st.gao)
		}
	} else {
		plan := planner.Choose(atoms, planner.Config{})
		st.gao, st.width, st.cost, st.planned = plan.GAO, plan.Width, plan.Cost, plan.Planned
		// Plan stickiness: on a re-plan, keep the previous order when it
		// is still width-feasible and within a small margin of the new
		// best. Near-tie candidates otherwise flip on tiny statistic
		// changes, which churns the emission order long-lived consumers
		// see and defeats the warm re-bind path for no modelled gain.
		if prev != nil && !prev.planForced && len(prev.gao) == len(plan.GAO) && !sameStrings(prev.gao, plan.GAO) {
			if w, err := q.hg.EliminationWidth(prev.gao); err == nil && w == plan.Width {
				if c := planner.CostOf(atoms, prev.gao); c <= plan.Cost*planStickiness {
					structural, _ := planner.Structural(atoms)
					st.gao = append([]string(nil), prev.gao...)
					st.width, st.cost = w, c
					st.planned = !sameStrings(st.gao, structural)
				}
			}
		}
	}
	outVars, shape, err := q.buildShape(st.gao, o)
	if err != nil {
		return nil, err
	}
	st.outVars, st.shape = outVars, shape
	st.ext = q.extendGAO(st.gao)
	var bounds []core.Bound
	if shape != nil {
		bounds = shape.Bounds
	}
	var prevB *binding
	if prev != nil && prev.dicts != nil {
		prevB = &binding{problem: prev.problem, epochs: prev.epochs, dicts: prev.dicts}
	}
	encode, freq := q.dictPlan(o, st.ext, bounds)
	b, err := q.bind(st.ext, bounds, o.Debug, encode, freq, prevB)
	if err != nil {
		return nil, err
	}
	st.problem, st.epochs, st.dicts = b.problem, b.epochs, b.dicts
	return st, nil
}

// Auto dictionary gates: an attribute is rank-encoded when its value
// span exceeds both dictMinSpan and dictSparsityFactor times its total
// distinct count — i.e. when the domain is sparse enough that encoding
// can coalesce constraint-store intervals, and large enough to matter.
const (
	dictSparsityFactor = 4
	dictMinSpan        = 1024
)

// planStickiness is the relative cost slack within which a re-plan
// keeps the incumbent order instead of switching to a marginally
// cheaper candidate.
const planStickiness = 1.02

// dictPositions decides, per extended-GAO position, whether the
// attribute gets an order-preserving dictionary. Hidden constant
// columns never do (they are pinned to one value). Returns nil when
// nothing is encoded.
func (q *Query) dictPositions(mode DictMode, ext []string) []bool {
	if mode == DictOff {
		return nil
	}
	type agg struct {
		min, max, distinct int
		seen               bool
	}
	aggs := map[string]*agg{}
	for _, a := range q.atoms {
		st := a.Rel.ColStats()
		for j, v := range a.Vars {
			if len(v) > 0 && v[0] == '#' {
				continue // hidden constant column
			}
			cs := st.Cols[j]
			if cs.Distinct == 0 {
				continue
			}
			g := aggs[v]
			if g == nil {
				g = &agg{min: cs.Min, max: cs.Max}
				aggs[v] = g
			}
			if cs.Min < g.min {
				g.min = cs.Min
			}
			if cs.Max > g.max {
				g.max = cs.Max
			}
			// The union's distinct count is unknown without merging the
			// columns; the max over atoms is its lower bound and the
			// right sparsity estimate either way: identical columns
			// (union == max) are judged exactly, and disjoint columns
			// widen the span, which the union really is sparse over.
			// Summing would overstate density on shared join attributes
			// — exactly where interval coalescing pays most.
			if cs.Distinct > g.distinct {
				g.distinct = cs.Distinct
			}
			g.seen = true
		}
	}
	var out []bool
	for i, v := range ext {
		g := aggs[v]
		if g == nil || !g.seen {
			continue
		}
		if mode == DictAuto {
			span := g.max - g.min + 1
			if span < dictMinSpan || span <= dictSparsityFactor*g.distinct {
				continue
			}
		}
		if out == nil {
			out = make([]bool, len(ext))
		}
		out[i] = true
	}
	return out
}

// dictPlan resolves the per-position dictionary decisions: encode marks
// the positions that get a dictionary at all (the dictPositions gates),
// freq the subset whose code space is frequency-permuted under
// Options.Domain == DomainFreq. A position is frequency-permuted only
// when (a) some bound column's skew sketch qualifies
// (planner.FreqSkewed), and (b) no range bound is pushed down at the
// position — a permuted code space has no contiguous bound image, so
// permuting a bounded attribute would forfeit the pushdown. Frequency
// positions are dictionary-encoded even when the DictAuto sparsity gate
// would leave them raw: the permutation IS the encoding. freq is nil
// when no position is permuted (always under DomainNatural or DictOff).
func (q *Query) dictPlan(o *Options, ext []string, bounds []core.Bound) (encode, freq []bool) {
	encode = q.dictPositions(o.Dict, ext)
	if o.Domain != DomainFreq || o.Dict == DictOff {
		return encode, nil
	}
	skewed := map[string]bool{}
	for _, a := range q.atoms {
		st := a.Rel.ColStats()
		for j, v := range a.Vars {
			if len(v) > 0 && v[0] == '#' {
				continue // hidden constant column
			}
			if planner.FreqSkewed(st.Rows, st.Cols[j]) {
				skewed[v] = true
			}
		}
	}
	for i, v := range ext {
		if !skewed[v] {
			continue
		}
		if bounds != nil && !bounds[i].Full() {
			continue
		}
		if freq == nil {
			freq = make([]bool, len(ext))
		}
		freq[i] = true
		if encode == nil {
			encode = make([]bool, len(ext))
		}
		encode[i] = true
	}
	return encode, freq
}

// column extracts column j of the raw tuple rows.
func column(tuples [][]int, j int) []int {
	out := make([]int, len(tuples))
	for i, tup := range tuples {
		out[i] = tup[j]
	}
	return out
}

// bind fetches (or builds) the GAO-permuted index of every atom and
// assembles the core problem, recording the relation epochs the indexes
// reflect. Atoms are grouped by relation and each relation's state is
// fetched under a single lock acquisition, so a self-join can never
// bind two different versions of the same relation; distinct relations
// may still bind at different epochs (mutations are per-relation, there
// are no cross-relation transactions).
//
// When encode marks positions for dictionary encoding, the dictionaries
// are built from the same tuple snapshots the trees are, the tuples are
// rank-encoded before indexing and the bounds are translated into code
// space. Encoded trees are binding-local (the relations' shared index
// caches hold raw trees only). On a re-bind (prev != nil, same
// evaluation order and encode mask) the expensive pieces are reused
// where the mutation provably cannot have changed them: a dictionary
// whose participating relations are all unmutated is kept, and an
// atom's encoded tree is kept when its relation is unmutated AND every
// dictionary it was encoded under was kept (a rebuilt shared-attribute
// dictionary re-codes the column, so the tree must follow it). A
// mutation to one relation of a two-atom query sharing an encoded
// attribute therefore still rebuilds both trees — that is semantic,
// not wasted work.
//
// freq (nil or len(gao)) marks encoded positions whose dictionary is
// frequency-permuted (core.NewFreqDict) rather than rank-ordered; a
// previous binding's dictionary is only reused when its ordering
// discipline matches.
func (q *Query) bind(gao []string, bounds []core.Bound, debug bool, encode, freq []bool, prev *binding) (*binding, error) {
	atoms := make([]core.Atom, len(q.atoms))
	epochs := make([]uint64, len(q.atoms))
	perms := make([][]int, len(q.atoms))
	for i, a := range q.atoms {
		positions, perm, err := core.ColumnPlan(gao, a.Vars)
		if err != nil {
			return nil, fmt.Errorf("minesweeper: atom %d (%s): %w", i, a.Rel.Name(), err)
		}
		perms[i] = perm
		atoms[i] = core.Atom{
			Name:      fmt.Sprintf("%s#%d", a.Rel.Name(), i),
			Positions: positions,
		}
	}
	byRel := map[Fragment][]int{}
	var order []Fragment
	for i, a := range q.atoms {
		if _, seen := byRel[a.Rel]; !seen {
			order = append(order, a.Rel)
		}
		byRel[a.Rel] = append(byRel[a.Rel], i)
	}

	if encode == nil {
		// Raw path: shared, cached indexes.
		for _, rel := range order {
			idxs := byRel[rel]
			ps := make([][]int, len(idxs))
			for j, i := range idxs {
				ps[j] = perms[i]
			}
			trees, epoch, err := rel.IndexesFor(ps)
			if err != nil {
				return nil, err
			}
			for j, i := range idxs {
				atoms[i].Tree = trees[j]
				epochs[i] = epoch
			}
		}
		p, err := core.NewProblemFromAtoms(gao, atoms)
		if err != nil {
			return nil, err
		}
		p.Bounds = bounds
		p.Debug = debug
		return &binding{problem: p, epochs: epochs}, nil
	}

	// Dictionary path. A relation is "encoded" when any of its atoms
	// binds an encoded position; only those relations need the
	// tuple-snapshot + binding-local build. Relations with no encoded
	// column anywhere keep going through the shared per-relation index
	// cache — the warm zero-rebuild path — which also means a relation
	// must take one path for ALL its atoms (mixing fetches could bind a
	// self-join across two epochs).
	relEncoded := map[Fragment]bool{}
	for i, a := range q.atoms {
		for _, gp := range atoms[i].Positions {
			if encode[gp] {
				relEncoded[a.Rel] = true
				break
			}
		}
	}
	relTuples := map[Fragment][][]int{}
	for _, rel := range order {
		idxs := byRel[rel]
		if !relEncoded[rel] {
			ps := make([][]int, len(idxs))
			for j, i := range idxs {
				ps[j] = perms[i]
			}
			trees, epoch, err := rel.IndexesFor(ps)
			if err != nil {
				return nil, err
			}
			for j, i := range idxs {
				atoms[i].Tree = trees[j]
				epochs[i] = epoch
			}
			continue
		}
		tuples, epoch := rel.SnapshotTuples()
		relTuples[rel] = tuples
		for _, i := range idxs {
			epochs[i] = epoch
		}
	}

	// Reuse eligibility against the previous binding: same evaluation
	// order, same encode mask, and per relation an unchanged epoch.
	reuse := prev != nil && prev.dicts != nil &&
		len(prev.epochs) == len(q.atoms) && sameStrings(prev.problem.GAO, gao)
	if reuse {
		for p := range gao {
			if (prev.dicts.ByPos[p] != nil) != encode[p] {
				reuse = false
				break
			}
			if d := prev.dicts.ByPos[p]; d != nil && d.Freq() != (freq != nil && freq[p]) {
				reuse = false
				break
			}
		}
	}
	unchanged := map[Fragment]bool{}
	if reuse {
		for _, rel := range order {
			ok := true
			for _, i := range byRel[rel] {
				if prev.epochs[i] != epochs[i] {
					ok = false
					break
				}
			}
			unchanged[rel] = ok
		}
	}

	ds := &core.DictSet{ByPos: make([]*core.Dict, len(gao))}
	dictKept := make([]bool, len(gao))
	for p, attr := range gao {
		if !encode[p] {
			continue
		}
		if reuse {
			keep := true
			for _, a := range q.atoms {
				for _, v := range a.Vars {
					if v == attr && !unchanged[a.Rel] {
						keep = false
					}
				}
			}
			if keep {
				ds.ByPos[p] = prev.dicts.ByPos[p]
				dictKept[p] = true
				continue
			}
		}
		var lists [][]int
		for _, a := range q.atoms {
			for j, v := range a.Vars {
				if v == attr {
					lists = append(lists, column(relTuples[a.Rel], j))
				}
			}
		}
		if freq != nil && freq[p] {
			ds.ByPos[p] = core.NewFreqDict(lists...)
		} else {
			ds.ByPos[p] = core.NewDict(lists...)
		}
	}
	for i, a := range q.atoms {
		if atoms[i].Tree != nil {
			continue // unencoded relation: shared cached index, set above
		}
		if reuse && unchanged[a.Rel] {
			keep := true
			for _, gp := range atoms[i].Positions {
				if encode[gp] && !dictKept[gp] {
					keep = false
					break
				}
			}
			if keep {
				atoms[i].Tree = prev.problem.Atoms[i].Tree
				continue
			}
		}
		permuted, err := core.PermuteTuples(perms[i], relTuples[a.Rel])
		if err != nil {
			return nil, fmt.Errorf("minesweeper: relation %q: %w", a.Rel.Name(), err)
		}
		ds.EncodeTuples(permuted, atoms[i].Positions)
		tree, err := reltree.New(a.Rel.Name(), len(perms[i]), permuted)
		if err != nil {
			return nil, err
		}
		atoms[i].Tree = tree
	}
	p, err := core.NewProblemFromAtoms(gao, atoms)
	if err != nil {
		return nil, err
	}
	p.Bounds = ds.EncodeBounds(bounds)
	p.Debug = debug
	return &binding{problem: p, epochs: epochs, dicts: ds}, nil
}

// sameStrings reports element-wise equality.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Prepare resolves the GAO (running the data-aware planner when none is
// forced) and the engine, decides dictionary encoding, and builds (or
// fetches from the relations' caches) the GAO-permuted indexes. The
// returned PreparedQuery can be executed repeatedly without
// re-indexing; two prepared queries that bind the same relation under
// the same column order (without dictionaries) share one index.
// Mutating a bound relation does not invalidate the PreparedQuery: the
// next execution detects the epoch change and re-plans transparently.
func (q *Query) Prepare(opts *Options) (*PreparedQuery, error) {
	if opts == nil {
		opts = &Options{}
	}
	o := *opts
	o.GAO = append([]string(nil), o.GAO...)
	eng := o.Engine
	if eng == EngineAuto {
		eng = EngineMinesweeper
	}
	runner, ok := engine.Lookup(eng.String())
	if !ok {
		return nil, fmt.Errorf("minesweeper: unknown engine %v", eng)
	}
	st, err := q.prepState(&o, nil)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{query: q, opts: o, eng: eng, runner: runner, cur: st}, nil
}

// GAO returns the resolved global attribute order — the evaluation (and
// tuple emission) order over the query's variables. It may differ from
// OutputVars, the presentation column order, and it may change when a
// mutation triggers a re-plan (Result.GAO records the order each run
// actually used).
func (pq *PreparedQuery) GAO() []string {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	return append([]string(nil), pq.cur.gao...)
}

// OutputVars returns the column names of emitted tuples, in order: the
// projection list (or all query variables in first-appearance order)
// followed by one labelled column per aggregate. This matches
// Result.Vars of the Execute family.
func (pq *PreparedQuery) OutputVars() []string {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	return append([]string(nil), pq.cur.outVars...)
}

// Engine returns the resolved engine (never EngineAuto).
func (pq *PreparedQuery) Engine() Engine { return pq.eng }

// Explain describes the plan an execution runs under: the chosen order
// and its elimination width, the cost model's estimate, whether the
// data-aware planner overrode the structural order, and which
// attributes are dictionary-encoded.
type Explain struct {
	// GAO is the evaluation order over the query's variables.
	GAO []string `json:"gao"`
	// Width is the order's elimination width w; the Minesweeper bound
	// under the order is Õ(|C|^{w+1} + Z).
	Width int `json:"width"`
	// EstCost is the planner's estimated cost of the order (model
	// units; comparable across orders of one query, not across queries).
	EstCost float64 `json:"est_cost"`
	// Planned is true when the cost model chose a different order than
	// the structural RecommendGAO default (false for forced GAOs).
	Planned bool `json:"planned"`
	// DictAttrs lists the attributes evaluated through a dictionary
	// encoding (dense code space).
	DictAttrs []string `json:"dict,omitempty"`
	// DictOrders reports, per encoded attribute, the domain ordering its
	// code space actually follows — "attr:rank" for the order-preserving
	// rank encoding, "attr:freq" for a frequency-permuted domain (see
	// DomainFreq). Stream consumers need this to reconstruct code-space
	// semantics: under "rank" the emission order and any code-space
	// bounds mirror raw value order, under "freq" they follow the
	// permuted domain.
	DictOrders []string `json:"dict_orders,omitempty"`
	// Partitions describes sharded execution, set only by the
	// scatter-gather layer (internal/shard): "attr:hash" or "attr:range"
	// per sharded relation named as "rel=attr:mode", or a single
	// "gathered" entry when the plan could not scatter and ran over the
	// gathered whole. Empty for unsharded execution.
	Partitions []string `json:"partitions,omitempty"`
	// Engine is the resolved engine.
	Engine Engine `json:"-"`
}

// dictOrderEntry renders one DictOrders element.
func dictOrderEntry(attr string, freq bool) string {
	if freq {
		return attr + ":freq"
	}
	return attr + ":rank"
}

// explainState renders the plan of one immutable state.
func (pq *PreparedQuery) explainState(st *prepState) Explain {
	ex := Explain{
		GAO:     append([]string(nil), st.gao...),
		Width:   st.width,
		EstCost: st.cost,
		Planned: st.planned,
		Engine:  pq.eng,
	}
	if st.dicts.Any() {
		for i, d := range st.dicts.ByPos {
			if d != nil {
				ex.DictAttrs = append(ex.DictAttrs, st.ext[i])
				ex.DictOrders = append(ex.DictOrders, dictOrderEntry(st.ext[i], d.Freq()))
			}
		}
	}
	return ex
}

// Explain returns the prepared query's current plan. After a mutation
// the plan reported here is the stale one until the next execution (or
// Refresh) re-plans; to observe the exact plan of one run, use
// StreamContextExplained or Result.GAO/Result.Stats.
func (pq *PreparedQuery) Explain() Explain {
	pq.mu.Lock()
	st := pq.cur
	pq.mu.Unlock()
	return pq.explainState(st)
}

// Explain reports the plan the options would prepare — order, width,
// estimated cost, dictionary attributes — without building any index
// or dictionary: planning needs only the relations' cached statistics,
// so explaining a query over millions of tuples is cheap. Options are
// validated (engine, forced GAO, shaping clauses) like Prepare would.
func (q *Query) Explain(opts *Options) (Explain, error) {
	if opts == nil {
		opts = &Options{}
	}
	o := *opts
	eng := o.Engine
	if eng == EngineAuto {
		eng = EngineMinesweeper
	}
	if _, ok := engine.Lookup(eng.String()); !ok {
		return Explain{}, fmt.Errorf("minesweeper: unknown engine %v", eng)
	}
	atoms := q.plannerAtoms()
	ex := Explain{Engine: eng}
	if len(o.GAO) > 0 {
		ex.GAO = append([]string(nil), o.GAO...)
		w, err := q.hg.EliminationWidth(ex.GAO)
		if err != nil {
			return Explain{}, fmt.Errorf("minesweeper: %w", err)
		}
		ex.Width = w
		ex.EstCost = planner.CostOf(atoms, ex.GAO)
	} else {
		plan := planner.Choose(atoms, planner.Config{})
		ex.GAO, ex.Width, ex.EstCost, ex.Planned = plan.GAO, plan.Width, plan.Cost, plan.Planned
	}
	_, sh, err := q.buildShape(ex.GAO, &o)
	if err != nil {
		return Explain{}, err
	}
	ext := q.extendGAO(ex.GAO)
	var bounds []core.Bound
	if sh != nil {
		bounds = sh.Bounds
	}
	encode, freq := q.dictPlan(&o, ext, bounds)
	for i, on := range encode {
		if on {
			ex.DictAttrs = append(ex.DictAttrs, ext[i])
			ex.DictOrders = append(ex.DictOrders, dictOrderEntry(ext[i], freq != nil && freq[i]))
		}
	}
	return ex, nil
}

// replanLocked rebuilds pq.cur when any bound relation has been
// mutated since the current state was built — the one shared re-plan
// condition for every path that needs a current plan. Re-planning
// re-runs the whole pipeline: fresh statistics, GAO choice (unless
// forced, with stickiness on near-ties), shaping, dictionaries,
// binding — so pushed-down constants and filters survive epoch changes
// and the order tracks the data. Callers hold pq.mu.
func (pq *PreparedQuery) replanLocked() error {
	for i, a := range pq.query.atoms {
		if a.Rel.Epoch() != pq.cur.epochs[i] {
			st, err := pq.query.prepState(&pq.opts, pq.cur)
			if err != nil {
				return err
			}
			pq.cur = st
			break
		}
	}
	return nil
}

// snapshot returns a per-run problem copy and the plan state it
// belongs to, re-planning first if needed (see replanLocked).
func (pq *PreparedQuery) snapshot() (*core.Problem, *prepState, error) {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	if err := pq.replanLocked(); err != nil {
		return nil, nil, err
	}
	return pq.cur.problem.Snapshot(), pq.cur, nil
}

// Refresh re-plans and re-binds immediately when any bound relation has
// been mutated since the current plan was built (a no-op otherwise).
// Executions do this transparently on their own; Refresh exists for
// callers that need the reported plan — GAO, Explain — to be current
// *before* running, e.g. a streaming server that writes the evaluation
// order into a response header ahead of the first tuple.
func (pq *PreparedQuery) Refresh() error {
	pq.mu.Lock()
	defer pq.mu.Unlock()
	return pq.replanLocked()
}

// Stream evaluates the prepared query, calling yield once per output
// tuple in GAO-lexicographic discovery order, with columns presented in
// OutputVars order. yield returns false to stop early.
func (pq *PreparedQuery) Stream(yield func([]int) bool) (Stats, error) {
	return pq.StreamContext(context.Background(), yield)
}

// StreamContext is Stream with cancellation: a cancelled or expired
// context aborts the run with ctx.Err(). Every engine runs through the
// same streaming executor and shaping adapter, so limits, cancellation,
// projection, filters and aggregation behave uniformly. Dictionary-
// encoded runs decode each tuple before the shaping net, so filters and
// aggregates always see raw values.
func (pq *PreparedQuery) StreamContext(ctx context.Context, yield func([]int) bool) (Stats, error) {
	stats, _, err := pq.streamPinned(ctx, nil, yield)
	return stats, err
}

// StreamContextExplained is StreamContext with plan introspection: the
// plan callback is invoked exactly once — with the plan this run
// actually executes under, after any transparent re-plan — before the
// first yield. Use it when the evaluation order must be reported ahead
// of the tuples (e.g. a streaming protocol header): reading GAO or
// Explain separately can race a concurrent mutation's re-plan, this
// cannot.
func (pq *PreparedQuery) StreamContextExplained(ctx context.Context, plan func(Explain), yield func([]int) bool) (Stats, error) {
	stats, _, err := pq.streamPinned(ctx, plan, yield)
	return stats, err
}

// pinnedRaw pins one plan state and assembles its raw run function —
// the resolved engine, the parallel-Minesweeper swap, the dictionary
// decode wrapper — shared by the shaped (streamPinned) and raw
// (StreamRawContext) streaming paths. A nil *prepState with nil error
// is the provably-empty no-work short-circuit (the plan callback has
// then already fired).
func (pq *PreparedQuery) pinnedRaw(plan func(Explain)) (engine.RunFunc, *core.Problem, *prepState, error) {
	pq.mu.Lock()
	empty := pq.cur.shape != nil && pq.cur.shape.Empty
	pq.mu.Unlock()
	if empty {
		// Contradictory filters: provably empty regardless of data, no
		// work (emptiness depends only on the clauses, not the epoch).
		if plan != nil {
			plan(pq.Explain())
		}
		return nil, nil, nil, nil
	}
	run, st, err := pq.snapshot()
	if err != nil {
		return nil, nil, nil, err
	}
	if plan != nil {
		plan(pq.explainState(st))
	}
	rawRun := pq.runner.Run
	if pq.eng == EngineMinesweeper && pq.opts.Workers > 1 {
		workers := pq.opts.Workers
		rawRun = func(ctx context.Context, p *core.Problem, stats *Stats, emit func([]int) bool) error {
			return core.MinesweeperParallelStream(ctx, p, workers, stats, emit)
		}
	}
	if st.dicts.Any() {
		inner := rawRun
		dicts := st.dicts
		rawRun = func(ctx context.Context, p *core.Problem, stats *Stats, emit func([]int) bool) error {
			return inner(ctx, p, stats, func(t []int) bool {
				dicts.DecodeInPlace(t)
				return emit(t)
			})
		}
	}
	return rawRun, run, st, nil
}

// streamPinned runs the query against one pinned plan state, which it
// returns alongside the run's stats (nil for the provably-empty
// no-work path). Everything the run reports — the plan callback, the
// stats plan fields, Result.GAO in the Execute wrappers — comes from
// that single state, never from a racy re-read of pq.cur.
func (pq *PreparedQuery) streamPinned(ctx context.Context, plan func(Explain), yield func([]int) bool) (Stats, *prepState, error) {
	var stats Stats
	rawRun, run, st, err := pq.pinnedRaw(plan)
	if err != nil || st == nil {
		return stats, nil, err
	}
	err = engine.RunShaped(ctx, rawRun, run, st.shape, &stats, yield)
	stats.PlanWidth, stats.PlanCost = st.width, st.cost
	return stats, st, err
}

// StreamRawContext runs the prepared query and yields RAW evaluation
// tuples: full extended-GAO-order rows (hidden constant positions
// first, then the GAO variables), dictionary-decoded, with range bounds
// already pushed down — but with no projection, dedup or aggregation
// applied. Tuples arrive in extended-GAO-lexicographic order and are
// fresh slices the callback may retain; yield returning false stops the
// run with a nil error.
//
// This is the scatter half of sharded execution: internal/shard runs
// one raw stream per fragment shard, merges them (the raw order is
// total and shard-disjoint on the partition attribute), and applies the
// query's shape exactly once on the gathered stream — which is what
// makes sharded output byte-identical to unsharded. The plan callback,
// when non-nil, is invoked with the run's pinned plan before the first
// yield, like StreamContextExplained.
func (pq *PreparedQuery) StreamRawContext(ctx context.Context, plan func(Explain), yield func([]int) bool) (Stats, error) {
	var stats Stats
	rawRun, run, st, err := pq.pinnedRaw(plan)
	if err != nil || st == nil {
		return stats, err
	}
	err = rawRun(ctx, run, &stats, yield)
	stats.PlanWidth, stats.PlanCost = st.width, st.cost
	return stats, err
}

// ShapePlan resolves the query's shaping under the given evaluation
// order and options: the output column names and the engine-level shape
// (nil when the run is a pass-through), exactly as a prepared execution
// would apply them. The shape's column indexes refer to positions of
// the extended evaluation order (hidden constants first, then gao).
// The gather half of sharded execution uses this to apply projection,
// dedup, bounds and aggregation once over the merged raw stream.
func (q *Query) ShapePlan(gao []string, opts *Options) (outVars []string, sh *engine.Shape, err error) {
	if opts == nil {
		opts = &Options{}
	}
	return q.buildShape(gao, opts)
}

// Execute evaluates the prepared query and returns the full result.
func (pq *PreparedQuery) Execute() (*Result, error) {
	return pq.ExecuteContext(context.Background())
}

// ExecuteContext evaluates the prepared query under the context. When
// the run stops early — context cancellation or deadline expiry — the
// tuples collected so far are returned alongside the non-nil error, so
// callers can serve a partial page: res is non-nil whenever evaluation
// started, and res.Tuples is a prefix of the full GAO-ordered result.
func (pq *PreparedQuery) ExecuteContext(ctx context.Context) (*Result, error) {
	res := &Result{Vars: pq.OutputVars(), GAO: pq.GAO(), Engine: pq.eng}
	stats, st, err := pq.streamPinned(ctx, nil, func(t []int) bool {
		res.Tuples = append(res.Tuples, t)
		return true
	})
	res.Stats = stats
	if st != nil {
		// The order the tuples were actually emitted under — pinned from
		// the run's own plan state, immune to concurrent re-plans.
		res.GAO = append([]string(nil), st.gao...)
	}
	return res, err
}

// ExecuteLimit evaluates the prepared query, stopping after at most
// limit output tuples (the GAO-lexicographically smallest ones —
// engines emit in order, so the prefix is engine-independent). A
// negative limit means unlimited; limit 0 returns an empty result
// without evaluating.
func (pq *PreparedQuery) ExecuteLimit(limit int) (*Result, error) {
	return pq.ExecuteLimitContext(context.Background(), limit)
}

// ExecuteLimitContext is ExecuteLimit with cancellation. Like
// ExecuteContext, a cancelled or expired context returns the partial
// result collected so far alongside the error.
func (pq *PreparedQuery) ExecuteLimitContext(ctx context.Context, limit int) (*Result, error) {
	if limit < 0 {
		return pq.ExecuteContext(ctx)
	}
	res := &Result{Vars: pq.OutputVars(), GAO: pq.GAO(), Engine: pq.eng}
	if limit == 0 {
		return res, nil
	}
	stats, st, err := pq.streamPinned(ctx, nil, func(t []int) bool {
		res.Tuples = append(res.Tuples, t)
		return len(res.Tuples) < limit
	})
	res.Stats = stats
	if st != nil {
		res.GAO = append([]string(nil), st.gao...)
	}
	return res, err
}

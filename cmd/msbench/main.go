// Command msbench regenerates the paper's evaluation tables.
//
// Every table/figure of "Beyond Worst-case Analysis for Joins with
// Minesweeper" (PODS 2014) plus one measured experiment per quantitative
// theorem is available by name (see DESIGN.md's experiment index):
//
//	msbench -exp fig2        # Figure 2: N vs |C| on star/3-path/tree
//	msbench -exp appj        # Appendix J: Minesweeper vs WCOJ baselines
//	msbench -exp all         # everything
//	msbench -exp all -scale small   # quick pass
//
// Output is a plain-text table per experiment, with the paper's expected
// shape quoted in the notes line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"minesweeper/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment name or 'all' (fig2, betaacyclic, appj, intersect, bowtie, triangle, treewidth, memo, gao)")
	scaleFlag := flag.String("scale", "full", "full or small")
	flag.Parse()

	scale := experiments.Full
	switch *scaleFlag {
	case "full":
	case "small":
		scale = experiments.Small
	default:
		fmt.Fprintf(os.Stderr, "msbench: unknown scale %q (want full or small)\n", *scaleFlag)
		os.Exit(2)
	}

	all := experiments.All()
	var selected []struct {
		Name string
		Run  experiments.Runner
	}
	if *exp == "all" {
		selected = all
	} else {
		for _, e := range all {
			if e.Name == *exp {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			names := make([]string, len(all))
			for i, e := range all {
				names[i] = e.Name
			}
			fmt.Fprintf(os.Stderr, "msbench: unknown experiment %q; available: %s\n", *exp, strings.Join(names, ", "))
			os.Exit(2)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tab, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		printTable(tab, time.Since(start))
	}
}

func printTable(t *experiments.Table, elapsed time.Duration) {
	fmt.Printf("== %s — %s (ran in %s)\n", t.ID, t.Title, elapsed.Round(time.Millisecond))
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
	printRow(t.Headers)
	for i := range widths {
		widths[i] = len(strings.Repeat("-", widths[i]))
	}
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	if t.Notes != "" {
		fmt.Printf("   note: %s\n", t.Notes)
	}
	fmt.Println()
}

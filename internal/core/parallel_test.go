package core

import (
	"math/rand"
	"reflect"
	"testing"

	"minesweeper/internal/certificate"
)

func TestTriangleParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 25; trial++ {
		dom := 3 + rng.Intn(10)
		mk := func() [][]int {
			var out [][]int
			for i := 0; i < rng.Intn(40); i++ {
				out = append(out, []int{rng.Intn(dom), rng.Intn(dom)})
			}
			return out
		}
		r, s, ty := mk(), mk(), mk()
		seq, err := Triangle(r, s, ty, nil)
		if err != nil {
			t.Fatal(err)
		}
		sortTriples(seq)
		for _, workers := range []int{1, 2, 3, 8, 100} {
			par, err := TriangleParallel(r, s, ty, workers, nil)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if len(seq) == 0 && len(par) == 0 {
				continue
			}
			if !reflect.DeepEqual(par, seq) {
				t.Fatalf("trial %d workers %d:\npar %v\nseq %v", trial, workers, par, seq)
			}
		}
	}
}

func TestTriangleParallelEmpty(t *testing.T) {
	out, err := TriangleParallel(nil, nil, nil, 4, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
	out, err = TriangleParallel([][]int{{1, 2}}, nil, nil, 4, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestTriangleParallelStatsMerged(t *testing.T) {
	var r, s, ty [][]int
	for i := 0; i < 30; i++ {
		r = append(r, []int{i, (i + 1) % 30})
		s = append(s, []int{i, (i + 2) % 30})
		ty = append(ty, []int{i, (i + 3) % 30})
	}
	var stats certificate.Stats
	if _, err := TriangleParallel(r, s, ty, 4, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.FindGaps == 0 || stats.ProbePoints == 0 {
		t.Fatalf("stats not merged: %+v", stats)
	}
}

func TestTriangleParallelDefaultsToSequential(t *testing.T) {
	edges := [][]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}}
	for _, w := range []int{0, -5, 1} {
		out, err := TriangleParallel(edges, edges, edges, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 6 {
			t.Fatalf("workers=%d: got %d triangles", w, len(out))
		}
	}
}

func TestMinesweeperParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	gao := []string{"A", "B", "C"}
	for trial := 0; trial < 20; trial++ {
		dom := 3 + rng.Intn(8)
		mk := func(name string, attrs []string) AtomSpec {
			var tuples [][]int
			for i := 0; i < rng.Intn(30); i++ {
				tup := make([]int, len(attrs))
				for j := range tup {
					tup[j] = rng.Intn(dom)
				}
				tuples = append(tuples, tup)
			}
			return AtomSpec{Name: name, Attrs: attrs, Tuples: tuples}
		}
		atoms := []AtomSpec{
			mk("R", []string{"A", "B"}),
			mk("S", []string{"B", "C"}),
			mk("T", []string{"A", "C"}),
		}
		seq, err := MinesweeperParallel(gao, atoms, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 50} {
			par, err := MinesweeperParallel(gao, atoms, workers, nil)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if len(seq) == 0 && len(par) == 0 {
				continue
			}
			if !reflect.DeepEqual(par, seq) {
				t.Fatalf("trial %d workers %d:\npar %v\nseq %v", trial, workers, par, seq)
			}
		}
	}
}

func TestMinesweeperParallelSharedAtoms(t *testing.T) {
	// Atoms without the first GAO attribute are shared across workers.
	gao := []string{"A", "B"}
	atoms := []AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: [][]int{{1, 5}, {2, 6}, {3, 5}, {9, 6}}},
		{Name: "U", Attrs: []string{"B"}, Tuples: [][]int{{5}, {6}}},
	}
	seq, err := MinesweeperParallel(gao, atoms, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MinesweeperParallel(gao, atoms, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("par %v vs seq %v", par, seq)
	}
	if len(seq) != 4 {
		t.Fatalf("expected 4 tuples, got %v", seq)
	}
}

func TestMinesweeperParallelEmptyFirstAttr(t *testing.T) {
	gao := []string{"A", "B"}
	atoms := []AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}},
		{Name: "U", Attrs: []string{"B"}, Tuples: [][]int{{5}}},
	}
	out, err := MinesweeperParallel(gao, atoms, 4, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

// TestMinesweeperParallelBoxStatsMerged: worker stats — including the
// box counters — must be summed into the caller's receiver. The
// clustered band input guarantees every worker's partition emits boxes
// and serves probe advances from them.
func TestMinesweeperParallelBoxStatsMerged(t *testing.T) {
	var r, s [][]int
	for c := 0; c < 4; c++ {
		base := c << 16
		for i := 0; i < 64; i++ {
			x := base + i
			r = append(r, []int{x, 0}, []int{x, 1})
			s = append(s, []int{x, 10}, []int{x, 11})
		}
	}
	atoms := []AtomSpec{
		{Name: "R", Attrs: []string{"X", "Y"}, Tuples: r},
		{Name: "S", Attrs: []string{"X", "Y"}, Tuples: s},
	}
	var seq certificate.Stats
	if _, err := MinesweeperParallel([]string{"X", "Y"}, atoms, 1, &seq); err != nil {
		t.Fatal(err)
	}
	if seq.Boxes == 0 || seq.BoxSkips == 0 {
		t.Fatalf("sequential run has no box activity: %+v", seq)
	}
	for _, workers := range []int{2, 4} {
		var par certificate.Stats
		out, err := MinesweeperParallel([]string{"X", "Y"}, atoms, workers, &par)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("workers %d: band join must be empty, got %d", workers, len(out))
		}
		if par.Boxes == 0 || par.BoxSkips == 0 {
			t.Fatalf("workers %d: box counters not merged: %+v", workers, par)
		}
		if par.ProbePoints == 0 || par.FindGaps == 0 {
			t.Fatalf("workers %d: stats not merged: %+v", workers, par)
		}
	}
}

package minesweeper

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseQuery builds a Query from a textual join expression such as
//
//	"R(A,B), S(B,C), T(A,C)"
//	"R(A,B) ⋈ S(B,C)"
//	"Edge(x,y) Edge(y,z)"
//
// Atoms are RelationName(Var, …); they may be separated by commas, the ⋈
// operator, or whitespace. Relation names are resolved through rels; the
// same relation may appear in several atoms (self-joins). Variable and
// relation names start with a letter or underscore and continue with
// letters, digits or underscores.
func ParseQuery(expr string, rels map[string]*Relation) (*Query, error) {
	p := &queryParser{src: expr}
	var atoms []Atom
	for {
		p.skipSeparators()
		if p.eof() {
			break
		}
		name, err := p.ident("relation name")
		if err != nil {
			return nil, err
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var vars []string
		for {
			p.skipSpace()
			v, err := p.ident("variable")
			if err != nil {
				return nil, err
			}
			vars = append(vars, v)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		rel, ok := rels[name]
		if !ok {
			return nil, fmt.Errorf("minesweeper: parse: unknown relation %q at offset %d", name, p.pos)
		}
		atoms = append(atoms, Atom{Rel: rel, Vars: vars})
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("minesweeper: parse: no atoms in %q", expr)
	}
	return NewQuery(atoms...)
}

type queryParser struct {
	src string
	pos int
}

func (p *queryParser) eof() bool { return p.pos >= len(p.src) }

func (p *queryParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *queryParser) skipSpace() {
	for !p.eof() && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

// skipSeparators consumes whitespace, commas and join operators between
// atoms (⋈ is multi-byte UTF-8; accept the ASCII fallbacks "|><|" and
// "join" too). The "join" keyword only separates when it stands alone —
// a relation named "joint" must not be split.
func (p *queryParser) skipSeparators() {
	for {
		p.skipSpace()
		switch {
		case !p.eof() && p.src[p.pos] == ',':
			p.pos++
		case strings.HasPrefix(p.src[p.pos:], "⋈"):
			p.pos += len("⋈")
		case strings.HasPrefix(p.src[p.pos:], "|><|"):
			p.pos += 4
		case p.hasKeyword("join"):
			p.pos += len("join")
		default:
			return
		}
	}
}

// hasKeyword reports whether the word starts at the current position,
// ends at a non-identifier boundary, and is not itself an atom: a
// following "(" (possibly after spaces) means the word is a relation
// name — a relation called "join" stays usable.
func (p *queryParser) hasKeyword(word string) bool {
	if !strings.HasPrefix(p.src[p.pos:], word) {
		return false
	}
	rest := p.src[p.pos+len(word):]
	for _, r := range rest {
		if isIdentRune(r) {
			return false // identifier continues: "joint(...)"
		}
		break
	}
	i := 0
	for i < len(rest) && (rest[i] == ' ' || rest[i] == '\t' || rest[i] == '\n' || rest[i] == '\r') {
		i++
	}
	return i >= len(rest) || rest[i] != '(' // "join(...)" is an atom
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *queryParser) ident(what string) (string, error) {
	p.skipSpace()
	start := p.pos
	for i, r := range p.src[start:] {
		if i == 0 {
			if !isIdentStart(r) {
				return "", fmt.Errorf("minesweeper: parse: expected %s at offset %d in %q", what, p.pos, p.src)
			}
			continue
		}
		if !isIdentRune(r) {
			p.pos = start + i
			return p.src[start : start+i], nil
		}
	}
	if start == len(p.src) {
		return "", fmt.Errorf("minesweeper: parse: expected %s at end of %q", what, p.src)
	}
	p.pos = len(p.src)
	return p.src[start:], nil
}

func (p *queryParser) expect(c byte) error {
	p.skipSpace()
	if p.eof() || p.src[p.pos] != c {
		return fmt.Errorf("minesweeper: parse: expected %q at offset %d in %q", string(c), p.pos, p.src)
	}
	p.pos++
	return nil
}

package cds

import (
	"math/rand"
	"strings"
	"testing"

	"minesweeper/internal/certificate"
	"minesweeper/internal/ordered"
)

func rg(lo, hi int) ordered.Range { return ordered.Range{Lo: lo, Hi: hi} }

func TestBoxConstraintCovers(t *testing.T) {
	b := BoxConstraint{
		Prefix: Pattern{Eq(1), Star},
		Dims:   []ordered.Range{rg(4, 8), rg(10, 20)},
	}
	if !b.Covers([]int{1, 99, 5, 15}) {
		t.Fatal("tuple inside the box must be covered")
	}
	for _, tp := range [][]int{
		{2, 99, 5, 15}, // prefix mismatch
		{1, 99, 9, 15}, // first dim outside
		{1, 99, 5, 21}, // second dim outside
		{1, 99, 5},     // too short
	} {
		if b.Covers(tp) {
			t.Fatalf("tuple %v must not be covered", tp)
		}
	}
	if !(BoxConstraint{Dims: []ordered.Range{rg(3, 2), rg(0, 9)}}).Empty() {
		t.Fatal("box with an empty dimension must be empty")
	}
}

func TestInsBoxDegenerateAndDedup(t *testing.T) {
	tr := NewTree(3)
	var s certificate.Stats
	tr.SetStats(&s)
	// One-dimensional boxes are plain interval constraints.
	tr.InsBox(BoxConstraint{Prefix: Pattern{Eq(5)}, Dims: []ordered.Range{rg(4, 8)}})
	if tr.BoxCount() != 0 || s.Constraints != 1 || s.Boxes != 0 {
		t.Fatalf("1-dim box: boxes=%d stats=%+v", tr.BoxCount(), s)
	}
	if !tr.CoversTuple([]int{5, 6, 0}) {
		t.Fatal("degenerate box must act as an interval constraint")
	}
	// Real boxes are stored once; dimension-wise subsumed re-inserts drop.
	b := BoxConstraint{Prefix: Pattern{}, Dims: []ordered.Range{rg(0, 10), rg(20, 30)}}
	tr.InsBox(b)
	tr.InsBox(b)
	tr.InsBox(BoxConstraint{Prefix: Pattern{}, Dims: []ordered.Range{rg(2, 8), rg(22, 28)}})
	if tr.BoxCount() != 1 || s.Boxes != 1 {
		t.Fatalf("dedup failed: boxes=%d stats.Boxes=%d", tr.BoxCount(), s.Boxes)
	}
	if !tr.CoversTuple([]int{3, 25, 0}) || tr.CoversTuple([]int{3, 31, 0}) {
		t.Fatal("box coverage wrong")
	}
}

// TestInsBoxMergeAdjacent: boxes with identical prefix and trailing
// dimensions whose first middle dimensions overlap or abut merge in
// place instead of accumulating — the widening-streak pattern that used
// to store one box per widening.
func TestInsBoxMergeAdjacent(t *testing.T) {
	tr := NewTree(3)
	var s certificate.Stats
	tr.SetStats(&s)
	mk := func(lo, hi int) BoxConstraint {
		return BoxConstraint{Prefix: Pattern{}, Dims: []ordered.Range{rg(lo, hi), rg(20, 30)}}
	}
	tr.InsBox(mk(0, 10))
	tr.InsBox(mk(11, 15)) // abuts: [0,10] ∪ [11,15] = [0,15]
	tr.InsBox(mk(14, 22)) // overlaps the merged box
	if tr.BoxCount() != 1 || s.Boxes != 1 {
		t.Fatalf("adjacent boxes did not merge: count=%d stats.Boxes=%d", tr.BoxCount(), s.Boxes)
	}
	for _, v := range []int{0, 10, 11, 15, 22} {
		if !tr.CoversTuple([]int{v, 25, 0}) {
			t.Fatalf("merged box must cover first dim %d", v)
		}
	}
	if tr.CoversTuple([]int{23, 25, 0}) {
		t.Fatal("merged box must not cover beyond the union")
	}
	// A gap between first dimensions must NOT merge (the union is not a
	// rectangle), and different trailing dimensions must not merge either.
	tr.InsBox(mk(25, 30))
	tr.InsBox(BoxConstraint{Prefix: Pattern{}, Dims: []ordered.Range{rg(16, 20), rg(40, 50)}})
	if tr.BoxCount() != 3 {
		t.Fatalf("unmergeable boxes collapsed: count=%d", tr.BoxCount())
	}
	if tr.CoversTuple([]int{24, 25, 0}) || tr.CoversTuple([]int{23, 35, 0}) {
		t.Fatal("merge ruled out space no inserted box covered")
	}
	// The widened box keeps working through the probe path after a merge
	// that re-sorts its bucket: a box under a pinned prefix merges too.
	tr2 := NewTree(3)
	p := Pattern{Eq(7)}
	tr2.InsBox(BoxConstraint{Prefix: p, Dims: []ordered.Range{rg(5, 9), rg(1, 3)}})
	tr2.InsBox(BoxConstraint{Prefix: p, Dims: []ordered.Range{rg(0, 4), rg(1, 3)}})
	if tr2.BoxCount() != 1 {
		t.Fatalf("pinned-prefix merge failed: count=%d", tr2.BoxCount())
	}
	if !tr2.CoversTuple([]int{7, 2, 2}) || tr2.CoversTuple([]int{8, 2, 2}) {
		t.Fatal("pinned-prefix merged box coverage wrong")
	}
}

func TestBoxSkipsProbe(t *testing.T) {
	tr := NewTree(2)
	var s certificate.Stats
	tr.SetStats(&s)
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 0})
	tr.InsConstraint(Constraint{Prefix: Pattern{Star}, Lo: ordered.NegInf, Hi: 20})
	tr.InsBox(BoxConstraint{Prefix: Pattern{}, Dims: []ordered.Range{rg(0, 10), rg(20, 30)}})
	probe := tr.GetProbePoint()
	if probe == nil || probe[0] != 0 || probe[1] != 31 {
		t.Fatalf("probe = %v, want [0 31]", probe)
	}
	if s.BoxSkips == 0 {
		t.Fatal("expected the box to serve the advance")
	}
}

// TestBoxResolutionBacktrack is the geometric-resolution payoff: a box
// covering a whole level under a run of first-coordinate values must be
// discharged with ONE backtrack that rules out the entire run, not one
// backtrack per value.
func TestBoxResolutionBacktrack(t *testing.T) {
	tr := NewTree(2)
	var s certificate.Stats
	tr.SetStats(&s)
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 0})
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: 4, Hi: ordered.PosInf})
	// For every a ∈ [0,4], all b are ruled out.
	tr.InsBox(BoxConstraint{Prefix: Pattern{}, Dims: []ordered.Range{
		rg(0, 4), rg(ordered.NegInf, ordered.PosInf)}})
	if got := tr.GetProbePoint(); got != nil {
		t.Fatalf("space is covered, got probe %v", got)
	}
	if s.Backtracks != 1 {
		t.Fatalf("backtracks = %d, want exactly 1 (whole run resolved at once)", s.Backtracks)
	}
	if s.BoxSkips == 0 {
		t.Fatal("expected box-served advances")
	}
}

// TestBoxMixedCoverBacktrack: when intervals and boxes jointly cover a
// level the inferred constraint must stay fully specific — and still
// make progress.
func TestBoxMixedCoverBacktrack(t *testing.T) {
	tr := NewTree(2)
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: ordered.NegInf, Hi: 0})
	tr.InsConstraint(Constraint{Prefix: Pattern{}, Lo: 0, Hi: ordered.PosInf})
	// Only a=0 is probe-able. Under it the box kills b ∈ [0,50] and an
	// =0-specific interval kills the rest: neither alone covers the level.
	tr.InsBox(BoxConstraint{Prefix: Pattern{}, Dims: []ordered.Range{rg(0, 0), rg(0, 50)}})
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(0)}, Lo: ordered.NegInf, Hi: 0})
	tr.InsConstraint(Constraint{Prefix: Pattern{Eq(0)}, Lo: 50, Hi: ordered.PosInf})
	if got := tr.GetProbePoint(); got != nil {
		t.Fatalf("space is covered, got probe %v", got)
	}
	if !tr.CoversTuple([]int{0, 25}) {
		t.Fatal("box region lost")
	}
}

// TestBoxDumpRoundTrip: a reset tree refilled with the same constraints
// and boxes must dump identically, and the dump must render every
// stored box — the gap count round-trips through the debug form.
func TestBoxDumpRoundTrip(t *testing.T) {
	fill := func(tr *Tree) {
		tr.InsConstraint(Constraint{Prefix: Pattern{Eq(2), Star}, Lo: 0, Hi: 7})
		tr.InsBox(BoxConstraint{Prefix: Pattern{Eq(2)}, Dims: []ordered.Range{rg(1, 3), rg(5, 9)}})
		tr.InsBox(BoxConstraint{Prefix: Pattern{}, Dims: []ordered.Range{
			rg(0, 10), rg(ordered.NegInf, 4), rg(7, ordered.PosInf)}})
	}
	fresh := NewTree(3)
	fill(fresh)
	reused := NewTree(3)
	fill(reused)
	reused.Reset()
	fill(reused)
	got, want := reused.Dump(), fresh.Dump()
	if got != want {
		t.Fatalf("reset tree diverged:\n got:\n%s\nwant:\n%s", got, want)
	}
	if n := strings.Count(got, "box@"); n != fresh.BoxCount() {
		t.Fatalf("dump renders %d boxes, tree stores %d:\n%s", n, fresh.BoxCount(), got)
	}
	for _, frag := range []string{"box@2 <=2>[1,3]x[5,9]", "box@2 <>[0,10]x[-inf,4]x[7,+inf]"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("dump missing %q:\n%s", frag, got)
		}
	}
}

// TestBoxProbeEnumeration drains trees seeded with random boxes and
// intervals over a small finite domain and checks the probe sequence is
// exactly the lexicographic enumeration of the active tuples — boxes
// must neither hide active tuples (unsound inference) nor leak covered
// ones (missed skips).
func TestBoxProbeEnumeration(t *testing.T) {
	const n, dom = 3, 6
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		tr := NewTree(n)
		stars := Pattern{Star, Star}
		for d := 0; d < n; d++ {
			tr.InsConstraint(Constraint{Prefix: stars[:d], Lo: ordered.NegInf, Hi: 0})
			tr.InsConstraint(Constraint{Prefix: stars[:d], Lo: dom - 1, Hi: ordered.PosInf})
		}
		var boxes []BoxConstraint
		var cons []Constraint
		for k := 0; k < 4; k++ {
			start := rng.Intn(n - 1)
			ndims := 2 + rng.Intn(n-start-1)
			prefix := make(Pattern, start)
			for i := range prefix {
				if rng.Intn(2) == 0 {
					prefix[i] = Star
				} else {
					prefix[i] = Eq(rng.Intn(dom))
				}
			}
			dims := make([]ordered.Range, ndims)
			for i := range dims {
				lo := rng.Intn(dom)
				dims[i] = rg(lo, lo+rng.Intn(dom-lo))
			}
			b := BoxConstraint{Prefix: prefix, Dims: dims}
			boxes = append(boxes, b)
			tr.InsBox(b)
		}
		for k := 0; k < 3; k++ {
			c := randomConstraint(rng, n, dom)
			cons = append(cons, c)
			tr.InsConstraint(c)
		}

		var want [][]int
		for a := 0; a < dom; a++ {
			for b := 0; b < dom; b++ {
			cell:
				for c := 0; c < dom; c++ {
					tp := []int{a, b, c}
					for _, bx := range boxes {
						if bx.Covers(tp) {
							continue cell
						}
					}
					for _, cn := range cons {
						if cn.Covers(tp) {
							continue cell
						}
					}
					want = append(want, append([]int(nil), tp...))
				}
			}
		}

		var got [][]int
		ruleOut := make(Pattern, n-1)
		for steps := 0; ; steps++ {
			if steps > 5*dom*dom*dom {
				t.Fatalf("trial %d: drain did not converge", trial)
			}
			probe := tr.GetProbePoint()
			if probe == nil {
				break
			}
			got = append(got, append([]int(nil), probe...))
			for i := 0; i < n-1; i++ {
				ruleOut[i] = Eq(probe[i])
			}
			pv := probe[n-1]
			tr.InsConstraint(Constraint{Prefix: ruleOut, Lo: pv - 1, Hi: pv + 1})
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: enumerated %d tuples, want %d\ngot: %v\nwant: %v",
				trial, len(got), len(want), got, want)
		}
		for i := range want {
			for j := 0; j < n; j++ {
				if got[i][j] != want[i][j] {
					t.Fatalf("trial %d: probe %d = %v, want %v", trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestBoxProbeInsertLoopSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budgets measured without -race")
	}
	// Same discipline as the interval-only loop test, with boxes in the
	// mix: after one drain has sized the arenas, a Reset + identical
	// refill + drain performs zero allocations.
	const span = 16
	stars := Pattern{Star, Star}
	ruleOut := Pattern{Eq(0), Eq(0)}
	dims := []ordered.Range{{}, {}}
	drain := func(tr *Tree) int {
		for d := 0; d < 3; d++ {
			tr.InsConstraint(Constraint{Prefix: stars[:d], Lo: ordered.NegInf, Hi: 0})
			tr.InsConstraint(Constraint{Prefix: stars[:d], Lo: span - 1, Hi: ordered.PosInf})
		}
		dims[0] = rg(0, span/2)
		dims[1] = rg(0, span-1)
		tr.InsBox(BoxConstraint{Prefix: stars[:1], Dims: dims})
		n := 0
		for pt := tr.GetProbePoint(); pt != nil; pt = tr.GetProbePoint() {
			ruleOut[0], ruleOut[1] = Eq(pt[0]), Eq(pt[1])
			tr.InsConstraint(Constraint{Prefix: ruleOut, Lo: ordered.NegInf, Hi: ordered.PosInf})
			if n++; n > 4*span*span {
				t.Fatal("drain did not converge")
			}
		}
		return n
	}
	tr := NewTree(3)
	first := drain(tr)
	if first == 0 {
		t.Fatal("drain produced no probes")
	}
	allocs := testing.AllocsPerRun(20, func() {
		tr.Reset()
		if got := drain(tr); got != first {
			t.Fatalf("drain emitted %d probes, want %d", got, first)
		}
	})
	if allocs != 0 {
		t.Fatalf("reset+drain with boxes steady state: %v allocs/run, want 0", allocs)
	}
}

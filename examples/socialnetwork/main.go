// Social-network analytics: the star, 3-path and tree queries of the
// paper's Section 5.2 over a synthetic power-law friendship graph,
// reproducing the Figure 2 phenomenon — the measured certificate |C|
// (FindGap operations) is far smaller than the input size N, so
// Minesweeper answers without reading most of the data.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	"minesweeper"
)

// powerLawEdges grows a preferential-attachment graph: heavy-tailed
// degrees like a real social network.
func powerLawEdges(n, outDeg int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	var edges [][]int
	pool := []int{0}
	seen := map[[2]int]bool{}
	for v := 1; v < n; v++ {
		d := outDeg
		if d > v {
			d = v
		}
		for i := 0; i < d; i++ {
			u := pool[rng.Intn(len(pool))]
			if u == v || seen[[2]int{v, u}] {
				continue
			}
			seen[[2]int{v, u}] = true
			seen[[2]int{u, v}] = true
			edges = append(edges, []int{v, u}, []int{u, v})
			pool = append(pool, u)
		}
		pool = append(pool, v)
	}
	return edges
}

func sample(n int, p float64, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	var out [][]int
	for v := 0; v < n; v++ {
		if rng.Float64() < p {
			out = append(out, []int{v})
		}
	}
	return out
}

func main() {
	const vertices = 3000
	edges := powerLawEdges(vertices, 8, 42)
	friend, err := minesweeper.NewRelation("Friend", 2, edges)
	if err != nil {
		log.Fatal(err)
	}
	rels := make([]*minesweeper.Relation, 4)
	for i := range rels {
		rels[i], err = minesweeper.NewRelation(fmt.Sprintf("VIP%d", i+1), 1, sample(vertices, 0.01, int64(i+1)))
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("friendship graph: %d vertices, %d directed edges\n", vertices, friend.Len())
	fmt.Printf("VIP samples: %d %d %d %d vertices\n\n", rels[0].Len(), rels[1].Len(), rels[2].Len(), rels[3].Len())

	queries := []struct {
		name  string
		atoms []minesweeper.Atom
	}{
		{"Star  — VIPs with three VIP friends", []minesweeper.Atom{
			{Rel: rels[0], Vars: []string{"A"}},
			{Rel: friend, Vars: []string{"A", "B"}},
			{Rel: friend, Vars: []string{"A", "C"}},
			{Rel: friend, Vars: []string{"A", "D"}},
			{Rel: rels[1], Vars: []string{"B"}},
			{Rel: rels[2], Vars: []string{"C"}},
			{Rel: rels[3], Vars: []string{"D"}},
		}},
		{"3-path — VIP chains of length three", []minesweeper.Atom{
			{Rel: friend, Vars: []string{"A", "B"}},
			{Rel: friend, Vars: []string{"B", "C"}},
			{Rel: friend, Vars: []string{"C", "D"}},
			{Rel: rels[0], Vars: []string{"A"}},
			{Rel: rels[1], Vars: []string{"B"}},
			{Rel: rels[2], Vars: []string{"C"}},
			{Rel: rels[3], Vars: []string{"D"}},
		}},
		{"Tree  — branching VIP neighbourhoods", []minesweeper.Atom{
			{Rel: friend, Vars: []string{"A", "B"}},
			{Rel: friend, Vars: []string{"B", "C"}},
			{Rel: friend, Vars: []string{"B", "D"}},
			{Rel: friend, Vars: []string{"D", "E"}},
			{Rel: rels[0], Vars: []string{"A"}},
			{Rel: rels[1], Vars: []string{"C"}},
			{Rel: rels[2], Vars: []string{"D"}},
			{Rel: rels[3], Vars: []string{"E"}},
		}},
	}

	fmt.Printf("%-40s %10s %10s %8s %6s\n", "query", "N", "|C|", "N/|C|", "Z")
	for _, qc := range queries {
		q, err := minesweeper.NewQuery(qc.atoms...)
		if err != nil {
			log.Fatal(err)
		}
		if !q.IsBetaAcyclic() {
			log.Fatalf("%s: expected β-acyclic", qc.name)
		}
		res, err := minesweeper.Execute(q, nil)
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		for _, a := range qc.atoms {
			n += a.Rel.Len()
		}
		c := res.Stats.CertificateEstimate()
		fmt.Printf("%-40s %10d %10d %7.0fx %6d\n", qc.name, n, c, float64(n)/float64(c), len(res.Tuples))
	}
	fmt.Println("\nAs in Figure 2 of the paper, the certificate is orders of magnitude")
	fmt.Println("smaller than the input — Minesweeper skips the bulk of the graph.")
}

package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"minesweeper"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRelation(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "r.rel", "R: A B\n1 2\n3 4\n")
	atom, err := loadRelation(path)
	if err != nil {
		t.Fatal(err)
	}
	if atom.Rel.Name() != "R" || atom.Rel.Arity() != 2 || atom.Rel.Len() != 2 {
		t.Fatalf("relation: %s/%d/%d", atom.Rel.Name(), atom.Rel.Arity(), atom.Rel.Len())
	}
	if len(atom.Vars) != 2 || atom.Vars[0] != "A" || atom.Vars[1] != "B" {
		t.Fatalf("vars = %v", atom.Vars)
	}
}

func TestLoadRelationErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := loadRelation(filepath.Join(dir, "missing.rel")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := writeFile(t, dir, "bad.rel", "no header here\n")
	if _, err := loadRelation(bad); err == nil {
		t.Fatal("headerless file must error")
	}
	ragged := writeFile(t, dir, "ragged.rel", "R: A B\n1\n")
	if _, err := loadRelation(ragged); err == nil {
		t.Fatal("ragged row must error")
	}
}

func TestLoadRelationJoinsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rp := writeFile(t, dir, "r.rel", "R: A B\n1 2\n2 3\n")
	sp := writeFile(t, dir, "s.rel", "S: B C\n2 5\n3 7\n")
	ra, err := loadRelation(rp)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := loadRelation(sp)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Rel.Len() != 2 || sa.Rel.Len() != 2 {
		t.Fatal("relations not loaded")
	}
}

// TestShapingFlagsEndToEnd mirrors main's -select/-where wiring: loaded
// relations, clause parsing, prepared execution.
func TestShapingFlagsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rp := writeFile(t, dir, "r.rel", "R: A B\n1 2\n2 3\n4 3\n")
	sp := writeFile(t, dir, "s.rel", "S: B C\n2 5\n3 7\n")
	ra, err := loadRelation(rp)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := loadRelation(sp)
	if err != nil {
		t.Fatal(err)
	}
	q, err := minesweeper.NewQuery(ra, sa)
	if err != nil {
		t.Fatal(err)
	}
	sel, aggs, err := minesweeper.ParseSelect("B, count(*)")
	if err != nil {
		t.Fatal(err)
	}
	where, err := minesweeper.ParseWhere("A < 4")
	if err != nil {
		t.Fatal(err)
	}
	pq, err := q.Prepare(&minesweeper.Options{Select: sel, Aggregates: aggs, Where: where})
	if err != nil {
		t.Fatal(err)
	}
	if got := pq.OutputVars(); len(got) != 2 || got[1] != "count(*)" {
		t.Fatalf("OutputVars = %v", got)
	}
	res, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// Join (A,B,C): (1,2,5),(2,3,7),(4,3,7); A<4 drops the last. Groups:
	// B=2 count 1, B=3 count 1.
	if !reflect.DeepEqual(res.Tuples, [][]int{{2, 1}, {3, 1}}) {
		t.Fatalf("rows = %v", res.Tuples)
	}
}

// TestExplainFlag mirrors main's -explain wiring: relations loaded from
// files, the query prepared, and the plan line formatted. The skewed
// sparse instance makes the planner override the structural order and
// dictionary-encode the sparse attributes, so every field of the line
// is exercised.
func TestExplainFlag(t *testing.T) {
	dir := t.TempDir()
	var rBuf, sBuf strings.Builder
	rBuf.WriteString("R: A B\n")
	for i := 0; i < 4000; i++ {
		fmt.Fprintf(&rBuf, "%d %d\n", i*10007+7, i*10007+3)
	}
	sBuf.WriteString("S: B C\n")
	for j := 0; j < 20; j++ {
		fmt.Fprintf(&sBuf, "%d %d\n", (j*11+5)*10007+1, j)
	}
	rp := writeFile(t, dir, "r.rel", rBuf.String())
	sp := writeFile(t, dir, "s.rel", sBuf.String())
	ra, err := loadRelation(rp)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := loadRelation(sp)
	if err != nil {
		t.Fatal(err)
	}
	q, err := minesweeper.NewQuery(ra, sa)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := q.Prepare(nil)
	if err != nil {
		t.Fatal(err)
	}
	line := formatExplain(pq.Explain())
	for _, want := range []string{"-- explain: gao=", "width=1", "cost=", "planned=true", "engine=minesweeper", "dict="} {
		if !strings.Contains(line, want) {
			t.Errorf("explain line %q missing %q", line, want)
		}
	}
	// A forced GAO is reported verbatim and never marked planned.
	pqForced, err := q.Prepare(&minesweeper.Options{GAO: []string{"A", "B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	forced := formatExplain(pqForced.Explain())
	if !strings.Contains(forced, "gao=A,B,C") || !strings.Contains(forced, "planned=false") {
		t.Errorf("forced explain line %q", forced)
	}
}

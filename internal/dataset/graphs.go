// Package dataset generates the workloads of the paper's evaluation and
// analysis: synthetic social graphs standing in for the SNAP datasets of
// Section 5.2 (com-Orkut, soc-Epinions1, soc-LiveJournal1 — the module is
// offline, so we produce scaled power-law graphs with matching qualitative
// shape), the star/3-path/tree queries of Figure 2, and the adversarial
// instance families used by the lower-bound arguments: the Appendix J path
// family on which worst-case-optimal algorithms are ω(|C|), the clique
// family of Proposition 5.3, the GAO-sensitivity instances of Examples
// B.3/B.4, and intersection/bow-tie/triangle families.
//
// All generators are deterministic given their seed.
package dataset

import (
	"math/rand"

	"minesweeper/internal/core"
)

// Graph is a directed edge list over vertices [0, N).
type Graph struct {
	N     int
	Edges [][]int // each {src, dst}
}

// PowerLawGraph generates a graph with a heavy-tailed degree distribution
// by preferential attachment: each new vertex draws outDeg targets
// proportionally to current degree (plus one). When symmetric is set the
// reverse of every edge is added, modelling an undirected network such as
// com-Orkut; otherwise edges stay directed, like soc-Epinions1 and
// soc-LiveJournal1.
func PowerLawGraph(n, outDeg int, symmetric bool, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n}
	if n == 0 {
		return g
	}
	// endpoint pool: vertices appear once per incident edge, giving
	// degree-proportional sampling.
	pool := make([]int, 0, 2*n*outDeg)
	pool = append(pool, 0)
	seen := map[[2]int]bool{}
	addEdge := func(u, v int) {
		k := [2]int{u, v}
		if u == v || seen[k] {
			return
		}
		seen[k] = true
		g.Edges = append(g.Edges, []int{u, v})
		pool = append(pool, u, v)
		if symmetric {
			rk := [2]int{v, u}
			if !seen[rk] {
				seen[rk] = true
				g.Edges = append(g.Edges, []int{v, u})
			}
		}
	}
	for v := 1; v < n; v++ {
		d := outDeg
		if d > v {
			d = v
		}
		for i := 0; i < d; i++ {
			u := pool[rng.Intn(len(pool))]
			addEdge(v, u)
		}
		pool = append(pool, v)
	}
	return g
}

// ErdosRenyiGraph generates a uniform random directed graph with the given
// number of edges (without self loops or duplicates).
func ErdosRenyiGraph(n, edges int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n}
	seen := map[[2]int]bool{}
	for len(g.Edges) < edges {
		u, v := rng.Intn(n), rng.Intn(n)
		k := [2]int{u, v}
		if u == v || seen[k] {
			continue
		}
		seen[k] = true
		g.Edges = append(g.Edges, []int{u, v})
	}
	return g
}

// SampleVertices returns the unary relation of vertices kept independently
// with probability p — the 0.001 vertex sampling of Section 5.2.
func SampleVertices(n int, p float64, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	var out [][]int
	for v := 0; v < n; v++ {
		if rng.Float64() < p {
			out = append(out, []int{v})
		}
	}
	return out
}

// GraphPreset identifies one of the scaled dataset stand-ins.
type GraphPreset struct {
	Name      string
	N         int
	OutDeg    int
	Symmetric bool
	Seed      int64
	SampleP   float64
}

// Presets mirrors the three datasets of Figure 2 at laptop scale:
// an Orkut-like dense undirected graph, an Epinions-like small directed
// trust graph, and a LiveJournal-like directed graph. Sampling keeps the
// Ri relations sparse exactly as in the paper (p = 0.001, raised for the
// smallest graph so the sample is non-empty).
var Presets = []GraphPreset{
	{Name: "com-Orkut(sim)", N: 12000, OutDeg: 16, Symmetric: true, Seed: 101, SampleP: 0.001},
	{Name: "soc-Epinions1(sim)", N: 6000, OutDeg: 6, Symmetric: false, Seed: 102, SampleP: 0.002},
	{Name: "soc-LiveJournal1(sim)", N: 15000, OutDeg: 9, Symmetric: false, Seed: 103, SampleP: 0.001},
}

// Build materializes a preset's graph and vertex samples.
func (p GraphPreset) Build() (*Graph, [][][]int) {
	g := PowerLawGraph(p.N, p.OutDeg, p.Symmetric, p.Seed)
	samples := make([][][]int, 4)
	for i := range samples {
		samples[i] = SampleVertices(p.N, p.SampleP, p.Seed+int64(i)+1)
	}
	return g, samples
}

// StarQuery builds the star query of Section 5.2:
// Q = R1(A) ⋈ S(A,B) ⋈ S(A,C) ⋈ S(A,D) ⋈ R2(B) ⋈ R3(C) ⋈ R4(D).
func StarQuery(g *Graph, samples [][][]int) (gao []string, atoms []core.AtomSpec) {
	gao = []string{"A", "B", "C", "D"}
	atoms = []core.AtomSpec{
		{Name: "R1", Attrs: []string{"A"}, Tuples: samples[0]},
		{Name: "S_AB", Attrs: []string{"A", "B"}, Tuples: g.Edges},
		{Name: "S_AC", Attrs: []string{"A", "C"}, Tuples: g.Edges},
		{Name: "S_AD", Attrs: []string{"A", "D"}, Tuples: g.Edges},
		{Name: "R2", Attrs: []string{"B"}, Tuples: samples[1]},
		{Name: "R3", Attrs: []string{"C"}, Tuples: samples[2]},
		{Name: "R4", Attrs: []string{"D"}, Tuples: samples[3]},
	}
	return
}

// PathQuery builds the 3-path query of Section 5.2:
// Q = S(A,B) ⋈ S(B,C) ⋈ S(C,D) ⋈ R5(A) ⋈ R6(B) ⋈ R7(C) ⋈ R8(D).
func PathQuery(g *Graph, samples [][][]int) (gao []string, atoms []core.AtomSpec) {
	gao = []string{"A", "B", "C", "D"}
	atoms = []core.AtomSpec{
		{Name: "S_AB", Attrs: []string{"A", "B"}, Tuples: g.Edges},
		{Name: "S_BC", Attrs: []string{"B", "C"}, Tuples: g.Edges},
		{Name: "S_CD", Attrs: []string{"C", "D"}, Tuples: g.Edges},
		{Name: "R5", Attrs: []string{"A"}, Tuples: samples[0]},
		{Name: "R6", Attrs: []string{"B"}, Tuples: samples[1]},
		{Name: "R7", Attrs: []string{"C"}, Tuples: samples[2]},
		{Name: "R8", Attrs: []string{"D"}, Tuples: samples[3]},
	}
	return
}

// TreeQuery builds the tree query of Section 5.2:
// Q = S(A,B) ⋈ S(B,C) ⋈ S(B,D) ⋈ S(D,E) ⋈ R9(A) ⋈ R10(C) ⋈ R11(D) ⋈ R12(E).
func TreeQuery(g *Graph, samples [][][]int) (gao []string, atoms []core.AtomSpec) {
	gao = []string{"A", "B", "C", "D", "E"}
	atoms = []core.AtomSpec{
		{Name: "S_AB", Attrs: []string{"A", "B"}, Tuples: g.Edges},
		{Name: "S_BC", Attrs: []string{"B", "C"}, Tuples: g.Edges},
		{Name: "S_BD", Attrs: []string{"B", "D"}, Tuples: g.Edges},
		{Name: "S_DE", Attrs: []string{"D", "E"}, Tuples: g.Edges},
		{Name: "R9", Attrs: []string{"A"}, Tuples: samples[0]},
		{Name: "R10", Attrs: []string{"C"}, Tuples: samples[1]},
		{Name: "R11", Attrs: []string{"D"}, Tuples: samples[2]},
		{Name: "R12", Attrs: []string{"E"}, Tuples: samples[3]},
	}
	return
}

//go:build !race

package minesweeper

const raceEnabled = false

package shard

import (
	"context"
	"fmt"
	"sync"

	minesweeper "minesweeper"
	"minesweeper/internal/certificate"
	"minesweeper/internal/core"
	"minesweeper/internal/engine"
)

// scatterBuf is the per-shard gather channel depth: deep enough to
// decouple a shard's probe loop from merge scheduling hiccups, shallow
// enough that cancellation stops wasted work quickly.
const scatterBuf = 64

// Prepared is the sharded counterpart of minesweeper.PreparedQuery: it
// holds the full (gathered) prepared query — which serves planning,
// Explain and the fallback path — plus, when the plan can scatter, one
// per-shard prepared query with the query's sliced atom rebound to that
// shard's fragment. Execution fans the per-shard raw streams out,
// merges them with a loser tree into GAO-lex order, and applies the
// shaping (projection, bounds, distinct, aggregates, limit) once on the
// gathered side, so the emitted stream is byte-identical to an
// unsharded run.
type Prepared struct {
	cat  *Catalog
	q    *minesweeper.Query
	opts minesweeper.Options
	full *minesweeper.PreparedQuery

	mu  sync.Mutex
	cur *scatterPlan
}

// scatterPlan pins one scatter decision: the GAO it was made for, the
// routing-table revision it saw, and — when scattering — the per-shard
// prepared queries (all forced to the same GAO under the
// order-preserving natural domain, so their raw streams merge by plain
// tuple comparison).
type scatterPlan struct {
	gao        []string
	version    uint64
	partitions []string
	shards     []*minesweeper.PreparedQuery // nil => run gathered via full
}

// Prepare plans a query for sharded execution. The query must have been
// built against this catalog's relations (Catalog.Query). Options carry
// through to every per-shard prepare, except that the GAO is pinned to
// the full plan's choice and the domain to the order-preserving natural
// encoding — a frequency-permuted domain would give each shard its own
// code order and break the merge.
func (c *Catalog) Prepare(q *minesweeper.Query, opts *minesweeper.Options) (*Prepared, error) {
	full, err := q.Prepare(opts)
	if err != nil {
		return nil, err
	}
	p := &Prepared{cat: c, q: q, full: full}
	if opts != nil {
		p.opts = *opts
	}
	if err := p.Refresh(); err != nil {
		return nil, err
	}
	return p, nil
}

// Refresh re-plans the full query if its relations mutated, then
// rebuilds the scatter plan when the GAO or the routing table moved.
func (p *Prepared) Refresh() error {
	if err := p.full.Refresh(); err != nil {
		return err
	}
	gao := p.full.GAO()
	version := p.cat.partsVersion()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur != nil && p.cur.version == version && sameStrings(p.cur.gao, gao) {
		return nil
	}
	cur, err := p.buildPlan(gao, version)
	if err != nil {
		return err
	}
	p.cur = cur
	return nil
}

// buildPlan decides whether the query scatters and builds the per-shard
// prepared queries when it does. Scatter requires a sliceable atom: one
// bound to a partitioned view relation whose partition column carries
// the leading GAO attribute — then each shard's substream enumerates a
// restriction of the outermost domain and per-assignment work is done
// once across the shard set. With several candidates the largest
// relation wins (slicing it buys the most). Without one — or under a
// frequency-permuted domain, or with one shard — execution runs
// gathered over the whole view.
func (p *Prepared) buildPlan(gao []string, version uint64) (*scatterPlan, error) {
	plan := &scatterPlan{gao: gao, version: version}
	if p.cat.n <= 1 {
		return plan, nil
	}
	plan.partitions = []string{"gathered"}
	if p.opts.Domain == minesweeper.DomainFreq || len(gao) == 0 {
		return plan, nil
	}
	atoms := p.q.Atoms()
	p.cat.mu.Lock()
	slice, part := -1, Partition{}
	for i, a := range atoms {
		rel, ok := p.cat.view.Get(a.Rel.Name())
		if !ok || minesweeper.Fragment(rel) != a.Rel {
			continue // not this catalog's relation (or a stale binding)
		}
		pt, ok := p.cat.parts[a.Rel.Name()]
		if !ok || pt.Column >= len(a.Vars) || a.Vars[pt.Column] != gao[0] {
			continue
		}
		if slice < 0 || a.Rel.Len() > atoms[slice].Rel.Len() {
			slice, part = i, pt
		}
	}
	p.cat.mu.Unlock()
	if slice < 0 {
		return plan, nil
	}
	name := atoms[slice].Rel.Name()
	shards := make([]*minesweeper.PreparedQuery, p.cat.n)
	for s := range shards {
		frag, ok := p.cat.inner[s].Get(name)
		if !ok {
			return plan, nil // fragment missing (partial create): run gathered
		}
		qs := p.q.CloneWithRelations(func(i int, f minesweeper.Fragment) minesweeper.Fragment {
			if i == slice {
				return frag
			}
			return f
		})
		o := p.opts
		o.GAO = gao
		o.Domain = minesweeper.DomainNatural
		pq, err := qs.Prepare(&o)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		shards[s] = pq
	}
	plan.shards = shards
	plan.partitions = []string{fmt.Sprintf("%s=%s/%d", name, part.String(), p.cat.n)}
	return plan, nil
}

// OutputVars returns the emitted column names (same as unsharded).
func (p *Prepared) OutputVars() []string { return p.full.OutputVars() }

// Engine returns the resolved engine.
func (p *Prepared) Engine() minesweeper.Engine { return p.full.Engine() }

// GAO returns the resolved global attribute order.
func (p *Prepared) GAO() []string { return p.full.GAO() }

// Explain returns the full plan annotated with the scatter decision.
func (p *Prepared) Explain() minesweeper.Explain {
	ex := p.full.Explain()
	p.mu.Lock()
	if p.cur != nil {
		ex.Partitions = append([]string(nil), p.cur.partitions...)
	}
	p.mu.Unlock()
	return ex
}

// Execute runs the query to completion (convenience over the stream).
func (p *Prepared) Execute() (*minesweeper.Result, error) {
	var tuples [][]int
	var ex minesweeper.Explain
	stats, err := p.StreamContextExplained(context.Background(), func(e minesweeper.Explain) { ex = e }, func(t []int) bool {
		tuples = append(tuples, t)
		return true
	})
	if err != nil {
		return nil, err
	}
	return &minesweeper.Result{Vars: p.OutputVars(), Tuples: tuples, GAO: ex.GAO, Stats: stats}, nil
}

// StreamContextExplained re-plans if needed, reports the plan, and
// streams the shaped result: scattered across the shard set when the
// plan allows, gathered over the view otherwise. Cancellation,
// emit-false early stop and error-truncated prefixes behave exactly as
// in the unsharded stream.
func (p *Prepared) StreamContextExplained(ctx context.Context, plan func(minesweeper.Explain), yield func([]int) bool) (minesweeper.Stats, error) {
	if err := p.Refresh(); err != nil {
		return minesweeper.Stats{}, err
	}
	p.mu.Lock()
	cur := p.cur
	p.mu.Unlock()
	if cur.shards == nil {
		wrapped := plan
		if plan != nil && len(cur.partitions) > 0 {
			wrapped = func(ex minesweeper.Explain) {
				ex.Partitions = append([]string(nil), cur.partitions...)
				plan(ex)
			}
		}
		return p.full.StreamContextExplained(ctx, wrapped, yield)
	}
	return p.gather(ctx, cur, plan, yield)
}

// gather is the scatter-gather executor: every shard's raw substream
// (already GAO-lex-ordered and decoded) feeds a bounded channel; a
// loser tree merges the fronts into one globally ordered raw stream,
// which flows through the query's shape exactly once. Because every
// stored copy of a sliced-atom row lives in exactly one fragment, each
// raw assignment surfaces exactly once and the merged stream is
// byte-identical to the unsharded raw stream.
func (p *Prepared) gather(ctx context.Context, cur *scatterPlan, plan func(minesweeper.Explain), yield func([]int) bool) (minesweeper.Stats, error) {
	_, sh, err := p.q.ShapePlan(cur.gao, &p.opts)
	if err != nil {
		return minesweeper.Stats{}, err
	}
	ex := p.full.Explain()
	ex.Partitions = append([]string(nil), cur.partitions...)
	if plan != nil {
		plan(ex)
	}

	synth := func(rctx context.Context, _ *core.Problem, stats *certificate.Stats, emit func([]int) bool) error {
		cctx, cancel := context.WithCancel(rctx)
		type sub struct {
			ch    chan []int
			stats minesweeper.Stats
			err   error
		}
		subs := make([]*sub, len(cur.shards))
		var wg sync.WaitGroup
		for s := range subs {
			sb := &sub{ch: make(chan []int, scatterBuf)}
			subs[s] = sb
			wg.Add(1)
			go func(s int, sb *sub) {
				defer wg.Done()
				defer close(sb.ch)
				ctr := &p.cat.counters[s]
				ctr.runs.Add(1)
				ctr.inflight.Add(1)
				defer ctr.inflight.Add(-1)
				sb.stats, sb.err = cur.shards[s].StreamRawContext(cctx, nil, func(t []int) bool {
					ctr.emitted.Add(1)
					select {
					case sb.ch <- t:
						return true
					default:
					}
					// Full channel: the merge is draining a hotter
					// shard. Park visibly (the queued counter) until
					// there is room or the run is over.
					ctr.queued.Add(1)
					defer ctr.queued.Add(-1)
					select {
					case sb.ch <- t:
						return true
					case <-cctx.Done():
						return false
					}
				})
			}(s, sb)
		}
		// On every exit: stop the producers, wait them out, and fold
		// their stats into the run's — including early stops, so a
		// limited run still reports the probe work it caused.
		defer func() {
			cancel()
			wg.Wait()
			for _, sb := range subs {
				stats.Add(&sb.stats)
			}
		}()

		var firstErr error
		recv := func(s int) []int {
			t, ok := <-subs[s].ch
			if !ok {
				if subs[s].err != nil && firstErr == nil {
					firstErr = subs[s].err
				}
				return nil
			}
			return t
		}
		heads := make([][]int, len(subs))
		for s := range heads {
			heads[s] = recv(s)
		}
		lt := newLoserTree(heads)
		for firstErr == nil {
			// Check before every emit, not just when a producer fails:
			// with small fragments the substreams can already sit fully
			// buffered when the caller cancels, and draining them would
			// break the anytime contract the unsharded engines keep
			// (no tuple is yielded after the context is done).
			if err := rctx.Err(); err != nil {
				return err
			}
			t := lt.pop(recv)
			if t == nil {
				break
			}
			if !emit(t) {
				return nil
			}
		}
		// A failed shard truncates the stream at the merge frontier:
		// everything emitted so far is a correct ordered prefix.
		return firstErr
	}

	var stats minesweeper.Stats
	err = engine.RunShaped(ctx, synth, nil, sh, &stats, yield)
	stats.PlanWidth, stats.PlanCost = ex.Width, ex.EstCost
	return stats, err
}

// loserTree merges k ordered tuple streams. Internal nodes 1..k-1 hold
// the loser of the match played there; tree[0] holds the overall
// winner; leaf s maps to node s+k. Each pop replays exactly the
// winner's root path: ceil(log2 k) comparisons per emitted tuple.
type loserTree struct {
	k    int
	tree []int
	head [][]int // current front per source; nil = exhausted
}

func newLoserTree(heads [][]int) *loserTree {
	lt := &loserTree{k: len(heads), tree: make([]int, len(heads)), head: heads}
	if lt.k > 0 {
		lt.tree[0] = lt.build(1)
	}
	return lt
}

// build computes the winner of the subtree rooted at node, parking each
// match's loser at its node.
func (lt *loserTree) build(node int) int {
	if node >= lt.k {
		return node - lt.k
	}
	a, b := lt.build(2*node), lt.build(2*node+1)
	if lt.beats(a, b) {
		lt.tree[node] = b
		return a
	}
	lt.tree[node] = a
	return b
}

// beats reports whether source a's front comes before source b's:
// exhausted streams lose to everything, ties break to the lower shard
// index so the merge is deterministic.
func (lt *loserTree) beats(a, b int) bool {
	ha, hb := lt.head[a], lt.head[b]
	if ha == nil {
		return false
	}
	if hb == nil {
		return true
	}
	for i := range ha {
		if ha[i] != hb[i] {
			return ha[i] < hb[i]
		}
	}
	return a < b
}

// pop removes and returns the smallest front, refilling its source and
// replaying its path. Returns nil when every source is exhausted.
func (lt *loserTree) pop(refill func(s int) []int) []int {
	if lt.k == 0 {
		return nil
	}
	w := lt.tree[0]
	t := lt.head[w]
	if t == nil {
		return nil
	}
	lt.head[w] = refill(w)
	s := w
	for n := (w + lt.k) / 2; n > 0; n /= 2 {
		if lt.beats(lt.tree[n], s) {
			lt.tree[n], s = s, lt.tree[n]
		}
	}
	lt.tree[0] = s
	return t
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package certificate provides the cost-accounting machinery for the
// certificate-complexity analysis of the paper (Section 2.2, Section 5.2).
//
// The paper measures the certificate size |C| of a live run by counting
// FindGap operations (Section 5.2: "The certificate size is measured by
// counting the number of FindGap operations during computing join
// queries"). Every engine in this library threads a *Stats through its
// index accesses and CDS operations so that the quantities bounded by the
// analysis — probe points, constraint insertions, FindGap calls,
// comparisons — are observable.
package certificate

import "fmt"

// Stats accumulates the cost counters of one join execution. The zero
// value is ready to use. Stats is not safe for concurrent use; every
// engine run owns its own instance.
type Stats struct {
	// FindGaps counts index FindGap operations — the paper's empirical
	// proxy for the certificate size |C| (Section 5.2, Figure 2).
	FindGaps int64
	// Comparisons counts value comparisons performed inside index
	// searches; certificates are sets of such comparisons (Def. 2.2).
	Comparisons int64
	// ProbePoints counts getProbePoint calls answered with a tuple
	// (the outer-loop iterations of Algorithm 2, bounded by O(2^r|C|+Z)).
	ProbePoints int64
	// Constraints counts constraint vectors handed to the CDS
	// (bounded by O(m 4^r |C| + Z) in Theorem 3.2).
	Constraints int64
	// CDSOps counts elementary CDS steps (interval-list operations and
	// chain hops inside getProbePoint), the T(CDS) term of Theorem 3.2.
	CDSOps int64
	// Outputs counts result tuples (the Z term).
	Outputs int64
	// Backtracks counts getProbePoint back-tracking steps
	// (line 16 of Algorithm 3).
	Backtracks int64
	// Boxes counts multi-dimensional box constraints stored in the CDS
	// (the box-cover generalization of the interval certificate: one box
	// rules out a rectangle over a contiguous run of GAO positions).
	Boxes int64
	// BoxSkips counts probe-point advances served by a stored box — each
	// skip replaces the per-value interval derivations an interval-only
	// CDS would have paid across the box's earlier dimensions.
	BoxSkips int64
	// PlanWidth and PlanCost describe the executed plan rather than the
	// run's work: the elimination width of the GAO the run evaluated
	// under and the planner's estimated cost for it (0 when no estimate
	// was made, e.g. direct core-level runs). They are set once per run
	// by the public execution layer and are not accumulated by Add.
	PlanWidth int
	PlanCost  float64
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.FindGaps += o.FindGaps
	s.Comparisons += o.Comparisons
	s.ProbePoints += o.ProbePoints
	s.Constraints += o.Constraints
	s.CDSOps += o.CDSOps
	s.Outputs += o.Outputs
	s.Backtracks += o.Backtracks
	s.Boxes += o.Boxes
	s.BoxSkips += o.BoxSkips
}

// CertificateEstimate returns the paper's Figure-2 measurement of |C|:
// the number of FindGap operations issued during the run.
func (s *Stats) CertificateEstimate() int64 { return s.FindGaps }

func (s *Stats) String() string {
	out := fmt.Sprintf(
		"findgaps=%d cmp=%d probes=%d constraints=%d cdsops=%d outputs=%d backtracks=%d",
		s.FindGaps, s.Comparisons, s.ProbePoints, s.Constraints, s.CDSOps, s.Outputs, s.Backtracks)
	if s.Boxes > 0 || s.BoxSkips > 0 {
		out += fmt.Sprintf(" boxes=%d boxskips=%d", s.Boxes, s.BoxSkips)
	}
	if s.PlanCost > 0 {
		out += fmt.Sprintf(" planwidth=%d plancost=%.3g", s.PlanWidth, s.PlanCost)
	}
	return out
}

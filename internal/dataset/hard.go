package dataset

import "minesweeper/internal/core"

// AppendixJPath builds the β-acyclic hard family of Appendix J:
// Q = ⋈_{i=1}^{m} R_i(A_i, A_{i+1}) where each R_i has m "chunks" over
// blocks of size M. Chunk j ≠ i, i-1 is the full block square
// [(j-1)M+2, jM]², chunk i is the single tuple ((i-1)M+1, (i-1)M+1), and
// chunk i-1 is empty (indices 1-based, wrapping m+1→1 as in the paper;
// for R_1 the m-th chunk is empty).
//
// The output is empty with an O(mM) certificate, yet Yannakakis, NPRR and
// Leapfrog all take Ω(mM²): each relation has Θ(mM²) tuples surviving
// pairwise semijoins, and the WCOJ algorithms enumerate Ω(M²) partial
// paths per chunk.
func AppendixJPath(m, M int) (gao []string, atoms []core.AtomSpec) {
	gao = make([]string, m+1)
	for i := range gao {
		gao[i] = attr(i)
	}
	for i := 1; i <= m; i++ {
		var tuples [][]int
		for j := 1; j <= m; j++ {
			switch j {
			case i: // single-tuple chunk
				v := (i-1)*M + 1
				tuples = append(tuples, []int{v, v})
			case i - 1, wrap(i-1, m): // empty chunk (wraps m+1 → 1)
				// R_1's empty chunk is chunk m.
			default:
				lo := (j-1)*M + 2
				hi := j * M
				for a := lo; a <= hi; a++ {
					for b := lo; b <= hi; b++ {
						tuples = append(tuples, []int{a, b})
					}
				}
			}
		}
		atoms = append(atoms, core.AtomSpec{
			Name:   "R" + itoa(i),
			Attrs:  []string{attr(i - 1), attr(i)},
			Tuples: tuples,
		})
	}
	return
}

func wrap(j, m int) int {
	if j <= 0 {
		return j + m
	}
	return j
}

func attr(i int) string { return "A" + itoa(i+1) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// CliqueInstance builds the Proposition 5.3 family for the query
// Q_w = (⋈_{i<j} R_{i,j}(v_i, v_j)) ⋈ U(v_1 … v_{w+1}) on domain [m]:
// U = [m]^{w+1} is replaced by the same-footprint projection constraints
// the proof uses — R_{i,j} = [m]² for i,j ≤ w, R_{i,w+1} = [m]×{1} for
// i < w, and R_{w,w+1} = [m]×{2}. The output is empty, |C| = O(wm), yet
// Minesweeper must spend Ω(m^w): the treewidth-exponent lower bound.
//
// U itself (size m^{w+1}) is omitted — it adds no constraints beyond the
// R_{i,j} and would swamp memory; the probe-point behaviour that the
// proposition analyses is produced entirely by the binary relations.
func CliqueInstance(w, m int) (gao []string, atoms []core.AtomSpec) {
	k := w + 1
	gao = make([]string, k)
	for i := range gao {
		gao[i] = "v" + itoa(i+1)
	}
	full := make([][]int, 0, m*m)
	for a := 1; a <= m; a++ {
		for b := 1; b <= m; b++ {
			full = append(full, []int{a, b})
		}
	}
	for i := 1; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			var tuples [][]int
			switch {
			case j < k:
				tuples = full
			case i < w: // R_{i, w+1} = [m] × {1}
				for a := 1; a <= m; a++ {
					tuples = append(tuples, []int{a, 1})
				}
			default: // R_{w, w+1} = [m] × {2}
				for a := 1; a <= m; a++ {
					tuples = append(tuples, []int{a, 2})
				}
			}
			atoms = append(atoms, core.AtomSpec{
				Name:   "R" + itoa(i) + "_" + itoa(j),
				Attrs:  []string{gao[i-1], gao[j-1]},
				Tuples: tuples,
			})
		}
	}
	return
}

// ExampleB3 builds the GAO-sensitivity instance of Examples B.3/B.4:
// Q = R(A,C) ⋈ S(B,C) with R = [n] × {2k} and S = [n] × {2k-1}.
// Under GAO (A,B,C) the optimal certificate is Θ(n²); under (C,A,B) it is
// O(n) — same data, different order.
func ExampleB3(n int) (atoms []core.AtomSpec) {
	var r, s [][]int
	for a := 1; a <= n; a++ {
		for k := 1; k <= n; k++ {
			r = append(r, []int{a, 2 * k})
			s = append(s, []int{a, 2*k - 1})
		}
	}
	return []core.AtomSpec{
		{Name: "R", Attrs: []string{"A", "C"}, Tuples: r},
		{Name: "S", Attrs: []string{"B", "C"}, Tuples: s},
	}
}

// ExampleB6 builds the instance of Example B.6: Q = R(A,B) ⋈ S(A,B) with
// R = {(i,i)} and S = {(N+i,i)}. Under GAO (A,B) the optimal certificate
// is O(1) (R[N] < S[1]); under (B,A) it is Ω(N).
func ExampleB6(n int) (atoms []core.AtomSpec) {
	var r, s [][]int
	for i := 1; i <= n; i++ {
		r = append(r, []int{i, i})
		s = append(s, []int{n + i, i})
	}
	return []core.AtomSpec{
		{Name: "R", Attrs: []string{"A", "B"}, Tuples: r},
		{Name: "S", Attrs: []string{"A", "B"}, Tuples: s},
	}
}

// LayeredPathInstance builds the Section 4.4 phenomenon for ℓ-path
// queries: a layered DAG with `layers` complete bipartite levels of
// `width` vertices each. The longest path has layers-1 edges, so the
// (layers)-edge path query is empty — yet the graph has width^layers
// partial paths that binding-at-a-time worst-case-optimal algorithms
// enumerate. Returns the GAO and atoms of the (layers)-edge path query
// over the single edge relation.
func LayeredPathInstance(layers, width int) (gao []string, atoms []core.AtomSpec) {
	var edges [][]int
	for l := 0; l < layers-1; l++ {
		base, next := l*width, (l+1)*width
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				edges = append(edges, []int{base + i, next + j})
			}
		}
	}
	gao = make([]string, layers+1)
	for i := range gao {
		gao[i] = attr(i)
	}
	for i := 0; i < layers; i++ {
		atoms = append(atoms, core.AtomSpec{
			Name:   "E" + itoa(i+1),
			Attrs:  []string{attr(i), attr(i + 1)},
			Tuples: edges,
		})
	}
	return
}

// InterleavedSets builds m sorted sets whose every element alternates
// (set i holds {m·k + i}), so the intersection is empty but any
// certificate needs Ω(mN) comparisons — the worst case for adaptive
// intersection.
func InterleavedSets(m, n int) [][]int {
	sets := make([][]int, m)
	for i := range sets {
		for k := 0; k < n; k++ {
			sets[i] = append(sets[i], m*k+i)
		}
	}
	return sets
}

// BlockSets builds m sets of n elements arranged in disjoint blocks, so
// the intersection is empty with an O(m) certificate (Example B.1 style).
func BlockSets(m, n int) [][]int {
	sets := make([][]int, m)
	for i := range sets {
		base := i * n
		for k := 0; k < n; k++ {
			sets[i] = append(sets[i], base+k)
		}
	}
	return sets
}

// TriangleHard builds the instance family where the generic CDS explores
// Ω(K²) (a,b)-pairs while the dyadic CDS of Theorem 5.4 explores O(K):
// R = [K]², S = {(b, K+1+b)}, T = {(a, 2K+10+a)} — every (a,b) survives R
// but no (b,c) of S matches any (a,c) of T, so the output is empty and
// the certificate is O(K).
func TriangleHard(k int) (r, s, t [][]int) {
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			r = append(r, []int{a, b})
		}
	}
	for b := 0; b < k; b++ {
		s = append(s, []int{b, k + 1 + b})
	}
	for a := 0; a < k; a++ {
		t = append(t, []int{a, 2*k + 10 + a})
	}
	return
}

// TriangleGraph converts a graph into the three symmetric binary
// relations of Q△ for triangle listing.
func TriangleGraph(g *Graph) (r, s, t [][]int) {
	sym := make([][]int, 0, 2*len(g.Edges))
	seen := map[[2]int]bool{}
	add := func(a, b int) {
		k := [2]int{a, b}
		if !seen[k] {
			seen[k] = true
			sym = append(sym, []int{a, b})
		}
	}
	for _, e := range g.Edges {
		add(e[0], e[1])
		add(e[1], e[0])
	}
	return sym, sym, sym
}

package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minesweeper/internal/storage"
)

// Kill-and-restart coverage for the per-shard WAL layout: a sharded
// catalog abandoned mid-life (no Close, one shard's log torn mid-record)
// must come back with every fragment at its exact pre-kill epoch, the
// routing table intact, and the same query answers.

func openSharded(t *testing.T, dir string, n int) *Catalog {
	t.Helper()
	c, err := Open(dir, n, storage.Options{})
	if err != nil {
		t.Fatalf("Open(%s, %d): %v", dir, n, err)
	}
	return c
}

func fragmentEpochs(t *testing.T, c *Catalog, name string) []uint64 {
	t.Helper()
	out := make([]uint64, c.Shards())
	for i := range out {
		frag, ok := c.Fragment(i, name)
		if !ok {
			t.Fatalf("shard %d has no fragment of %s", i, name)
		}
		out[i] = frag.Epoch()
	}
	return out
}

func TestDurableRecoveryPerShard(t *testing.T) {
	dir := t.TempDir()
	c := openSharded(t, dir, 4)

	var rT, sT [][]int
	for i := 0; i < 160; i++ {
		rT = append(rT, []int{i, (i * 3) % 50})
		sT = append(sT, []int{(i * 3) % 50, i % 20})
	}
	if _, err := c.Create("R", []string{"a", "b"}, rT); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("S", []string{"b", "c"}, sT); err != nil {
		t.Fatal(err)
	}
	// A mutation alphabet that bumps different fragments by different
	// amounts, so "exact epochs" is a real assertion, not 1==1.
	if _, err := c.Insert("R", []int{500, 7}, []int{501, 14}, []int{502, 21}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Delete("R", []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replace("S", sT[:100]); err != nil {
		t.Fatal(err)
	}
	p, ok := c.PartitionOf("R")
	if !ok {
		t.Fatal("R has no partition")
	}
	p.Mode = ModeRange
	p.Splits = []int{64, 128, 400}
	if err := c.ForcePartition("R", p); err != nil {
		t.Fatal(err)
	}

	epochsR := fragmentEpochs(t, c, "R")
	epochsS := fragmentEpochs(t, c, "S")
	partR, _ := c.PartitionOf("R")
	partS, _ := c.PartitionOf("S")
	const expr = "R(A,B), S(B,C)"
	ref := reference(t, c, expr, nil)
	// Kill: abandon c without Close. Every committed record is already
	// on disk; only the torn tail below is allowed to disappear.

	// Tear one shard's WAL mid-record, the classic crash-during-append.
	const torn = 2
	wals, err := filepath.Glob(filepath.Join(ReplicaDir(dir, torn, 0), "wal-*.log"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no WAL files under shard-%d: %v", torn, err)
	}
	f, err := os.OpenFile(wals[len(wals)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("#!ms insert R 2 1 00000000\n7 "); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := openSharded(t, dir, 4)
	defer c2.Close()

	if got := fragmentEpochs(t, c2, "R"); !equalU64(got, epochsR) {
		t.Fatalf("R fragment epochs after recovery = %v, want %v", got, epochsR)
	}
	if got := fragmentEpochs(t, c2, "S"); !equalU64(got, epochsS) {
		t.Fatalf("S fragment epochs after recovery = %v, want %v", got, epochsS)
	}
	if got, ok := c2.PartitionOf("R"); !ok || got.fingerprint() != partR.fingerprint() {
		t.Fatalf("R partition after recovery = %+v, want %+v", got, partR)
	}
	if got, ok := c2.PartitionOf("S"); !ok || got.fingerprint() != partS.fingerprint() {
		t.Fatalf("S partition after recovery = %+v, want %+v", got, partS)
	}

	stats := c2.ShardStats()
	for i, st := range stats {
		if i == torn && st.Storage.TruncatedBytes == 0 {
			t.Fatalf("shard %d recovered a torn WAL but reports 0 truncated bytes", torn)
		}
		if i != torn && st.Storage.TruncatedBytes != 0 {
			t.Fatalf("shard %d reports %d truncated bytes, want 0 (only shard %d was torn)",
				i, st.Storage.TruncatedBytes, torn)
		}
	}

	q, err := c2.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := c2.Prepare(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if ndjson(t, res.Vars, res.Tuples) != ndjson(t, ref.Vars, ref.Tuples) {
		t.Fatalf("post-recovery stream diverges from pre-kill stream (%d vs %d tuples)",
			len(res.Tuples), len(ref.Tuples))
	}

	// Mutations keep working after recovery — the truncated shard is
	// not read-only.
	if _, err := c2.Insert("R", []int{900, 1}); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}

func TestOpenRefusesShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	c := openSharded(t, dir, 4)
	if _, err := c.Create("R", []string{"a", "b"}, [][]int{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 8} {
		_, err := Open(dir, n, storage.Options{})
		if err == nil || !strings.Contains(err.Error(), "laid out for 4 shards") {
			t.Fatalf("Open with %d shards over a 4-shard layout: err = %v, want layout refusal", n, err)
		}
	}
	c2 := openSharded(t, dir, 4)
	defer c2.Close()
	if got := c2.Len(); got != 1 {
		t.Fatalf("reopened catalog has %d relations, want 1", got)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package ordered

import (
	"fmt"
	"strings"
)

// Range is a closed integer range [Lo, Hi] with Lo ≤ Hi.
// The paper manipulates open intervals (l, r) over ℕ; over an integer
// domain the open interval (l, r) is exactly the closed range [l+1, r-1],
// and closed ranges make merging semantics unambiguous: [1,3] and [4,6]
// are adjacent and merge to [1,6] because no integer separates them,
// whereas the open intervals (2,5) and (5,9) correctly remain apart
// because 5 is uncovered.
type Range struct {
	Lo, Hi int
}

// Empty reports whether the range covers no integer.
func (r Range) Empty() bool { return r.Lo > r.Hi }

// Contains reports whether v lies inside the closed range.
func (r Range) Contains(v int) bool { return r.Lo <= v && v <= r.Hi }

// Intersect returns the intersection of two ranges (possibly empty).
func (r Range) Intersect(o Range) Range {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Range{lo, hi}
}

func (r Range) String() string { return fmt.Sprintf("[%s,%s]", fmtVal(r.Lo), fmtVal(r.Hi)) }

func fmtVal(v int) string {
	switch {
	case v <= NegInf:
		return "-inf"
	case v >= PosInf:
		return "+inf"
	}
	return fmt.Sprintf("%d", v)
}

// OpenToRange converts the paper's open interval (l, r) to a closed integer
// Range. Sentinel endpoints stay sentinels so that [NegInf, x] means
// "everything up to x". The result may be empty (when r ≤ l+1).
func OpenToRange(l, r int) Range {
	lo, hi := l, r
	if l > NegInf {
		lo = l + 1
	}
	if r < PosInf {
		hi = r - 1
	}
	return Range{lo, hi}
}

// RangeSet maintains a set of disjoint, non-adjacent closed integer ranges,
// implementing the paper's IntervalList (Appendix E.2, Proposition E.3) on
// top of the hybrid SortedList: Insert, Covers and Next all run in O(log n)
// (Insert amortized, as merged ranges are consumed). The SortedList is
// embedded by value so a RangeSet — and anything that embeds one, like a
// CDS node — is a single flat allocation; the zero value is an empty set
// ready for use.
type RangeSet struct {
	list    SortedList[int] // key = Lo, payload = Hi
	inserts int             // total Insert calls, for accounting
}

// NewRangeSet returns an empty RangeSet.
func NewRangeSet() *RangeSet { return &RangeSet{} }

// Reset empties the set, retaining the backing storage of the embedded
// list so a refill does not allocate.
func (s *RangeSet) Reset() {
	s.list.Reset()
	s.inserts = 0
}

// Len returns the number of maximal ranges currently stored.
func (s *RangeSet) Len() int { return s.list.Len() }

// Inserts returns the total number of Insert/InsertOpen calls performed,
// used by the cost accounting in the CDS analysis.
func (s *RangeSet) Inserts() int { return s.inserts }

// Empty reports whether the set covers no integer.
func (s *RangeSet) Empty() bool { return s.list.Len() == 0 }

// Insert adds the closed range [lo, hi], merging with overlapping or
// adjacent ranges. Empty input ranges are ignored.
func (s *RangeSet) Insert(lo, hi int) {
	s.inserts++
	if lo > hi {
		return
	}
	// Merge with a predecessor range that overlaps or is adjacent.
	if k, v, ok := s.list.FindGlb(lo); ok {
		adjacent := v >= lo // overlap
		if !adjacent && v < PosInf && v+1 == lo {
			adjacent = true
		}
		if adjacent {
			s.list.Delete(k)
			lo = k
			if v > hi {
				hi = v
			}
		}
	}
	// Merge with successor ranges starting at ≤ hi+1.
	for {
		k, v, ok := s.list.FindLub(lo)
		if !ok {
			break
		}
		if hi < PosInf {
			if k > hi+1 {
				break
			}
		}
		s.list.Delete(k)
		if v > hi {
			hi = v
		}
	}
	s.list.Insert(lo, hi)
}

// InsertOpen adds the paper-style open interval (l, r).
func (s *RangeSet) InsertOpen(l, r int) {
	rg := OpenToRange(l, r)
	s.Insert(rg.Lo, rg.Hi)
}

// Covers reports whether v lies in some stored range.
func (s *RangeSet) Covers(v int) bool {
	if k, hi, ok := s.list.FindGlb(v); ok {
		return k <= v && v <= hi
	}
	return false
}

// Next returns the smallest value ≥ v not covered by any stored range
// (the IntervalList Next operation). If every value from v up to +∞ is
// covered, it returns PosInf, which callers treat as "no value".
func (s *RangeSet) Next(v int) int {
	if _, hi, ok := s.list.FindGlb(v); ok && hi >= v {
		if hi >= PosInf {
			return PosInf
		}
		return hi + 1
	}
	return v
}

// CoveringRange returns the stored range containing v, if any.
func (s *RangeSet) CoveringRange(v int) (Range, bool) {
	if k, hi, ok := s.list.FindGlb(v); ok && hi >= v {
		return Range{k, hi}, true
	}
	return Range{}, false
}

// Ranges returns all stored maximal ranges in ascending order.
func (s *RangeSet) Ranges() []Range {
	out := make([]Range, 0, s.list.Len())
	s.list.Ascend(func(lo, hi int) bool {
		out = append(out, Range{lo, hi})
		return true
	})
	return out
}

// Within returns the parts of [lo, hi] covered by the set, clipped to the
// query range, in ascending order.
func (s *RangeSet) Within(lo, hi int) []Range {
	var out []Range
	if lo > hi {
		return nil
	}
	// A predecessor range may reach into [lo, hi].
	if k, v, ok := s.list.FindGlb(lo); ok && v >= lo {
		r := Range{k, v}.Intersect(Range{lo, hi})
		if !r.Empty() {
			out = append(out, r)
		}
	}
	s.list.AscendFrom(lo+1, func(k, v int) bool {
		if k > hi {
			return false
		}
		r := Range{k, v}.Intersect(Range{lo, hi})
		if !r.Empty() {
			out = append(out, r)
		}
		return true
	})
	return out
}

// Gaps returns the maximal sub-ranges of [lo, hi] not covered by the set,
// in ascending order.
func (s *RangeSet) Gaps(lo, hi int) []Range {
	var out []Range
	cur := lo
	for _, r := range s.Within(lo, hi) {
		if r.Lo > cur {
			out = append(out, Range{cur, r.Lo - 1})
		}
		if r.Hi >= PosInf {
			return out
		}
		cur = r.Hi + 1
		if cur > hi {
			return out
		}
	}
	if cur <= hi {
		out = append(out, Range{cur, hi})
	}
	return out
}

// CoversRange reports whether every integer of [lo, hi] is covered.
func (s *RangeSet) CoversRange(lo, hi int) bool {
	if lo > hi {
		return true
	}
	r, ok := s.CoveringRange(lo)
	return ok && r.Hi >= hi
}

// NextUnion returns the smallest value ≥ v covered by neither a nor b.
// It is the NextUnion helper of Algorithm 10, implemented as the
// alternating MERGE of the two lists; each alternation advances past at
// least one stored range, so the total work is bounded by the number of
// ranges skipped.
func NextUnion(a, b *RangeSet, v int) int {
	for {
		v1 := a.Next(v)
		if v1 >= PosInf {
			return PosInf
		}
		v2 := b.Next(v1)
		if v2 == v1 {
			return v1
		}
		if v2 >= PosInf {
			return PosInf
		}
		v = v2
	}
}

func (s *RangeSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.Ranges() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}

package minesweeper

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func rel(t *testing.T, name string, arity int, tuples [][]int) *Relation {
	t.Helper()
	r, err := NewRelation(name, arity, tuples)
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	return r
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation("R", 0, nil); err == nil {
		t.Fatal("arity 0 must fail")
	}
	if _, err := NewRelation("R", 2, [][]int{{1}}); err == nil {
		t.Fatal("ragged tuple must fail")
	}
	if _, err := NewRelation("R", 1, [][]int{{-1}}); err == nil {
		t.Fatal("negative value must fail")
	}
	r := rel(t, "R", 2, [][]int{{1, 2}})
	if r.Name() != "R" || r.Arity() != 2 || r.Len() != 1 {
		t.Fatal("accessors wrong")
	}
}

func TestRelationIsCopied(t *testing.T) {
	src := [][]int{{1, 2}}
	r := rel(t, "R", 2, src)
	src[0][0] = 99
	q, _ := NewQuery(Atom{Rel: r, Vars: []string{"A", "B"}})
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples[0][0] == 99 {
		t.Fatal("relation aliased caller's slice")
	}
}

func TestNewQueryValidation(t *testing.T) {
	r := rel(t, "R", 2, nil)
	if _, err := NewQuery(); err == nil {
		t.Fatal("empty query must fail")
	}
	if _, err := NewQuery(Atom{Rel: nil, Vars: []string{"A"}}); err == nil {
		t.Fatal("nil relation must fail")
	}
	if _, err := NewQuery(Atom{Rel: r, Vars: []string{"A"}}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if _, err := NewQuery(Atom{Rel: r, Vars: []string{"A", "A"}}); err == nil {
		t.Fatal("repeated var must fail")
	}
}

func TestQueryStructure(t *testing.T) {
	r := rel(t, "R", 2, nil)
	s := rel(t, "S", 2, nil)
	u := rel(t, "T", 2, nil)
	tri, _ := NewQuery(
		Atom{Rel: r, Vars: []string{"A", "B"}},
		Atom{Rel: s, Vars: []string{"B", "C"}},
		Atom{Rel: u, Vars: []string{"A", "C"}},
	)
	if tri.IsAlphaAcyclic() || tri.IsBetaAcyclic() {
		t.Fatal("triangle should be cyclic")
	}
	if _, ok := tri.NestedEliminationOrder(); ok {
		t.Fatal("triangle has no NEO")
	}
	gao, w := tri.RecommendGAO()
	if len(gao) != 3 || w != 2 {
		t.Fatalf("RecommendGAO = %v, %d", gao, w)
	}
	path, _ := NewQuery(
		Atom{Rel: r, Vars: []string{"A", "B"}},
		Atom{Rel: s, Vars: []string{"B", "C"}},
	)
	if !path.IsAlphaAcyclic() || !path.IsBetaAcyclic() {
		t.Fatal("path should be acyclic")
	}
	gao, w = path.RecommendGAO()
	if w != 1 {
		t.Fatalf("path width = %d", w)
	}
	if ew, err := path.EliminationWidth(gao); err != nil || ew != 1 {
		t.Fatalf("EliminationWidth = %d, %v", ew, err)
	}
	if got := path.Vars(); len(got) != 3 {
		t.Fatalf("Vars = %v", got)
	}
}

func TestExecuteAllEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	mkRel := func(name string, arity, n, dom int) *Relation {
		var tuples [][]int
		for i := 0; i < n; i++ {
			tup := make([]int, arity)
			for j := range tup {
				tup[j] = rng.Intn(dom)
			}
			tuples = append(tuples, tup)
		}
		return rel(t, name, arity, tuples)
	}
	for trial := 0; trial < 8; trial++ {
		r := mkRel("R", 2, 20, 5)
		s := mkRel("S", 2, 20, 5)
		u := mkRel("U", 1, 4, 5)
		q, err := NewQuery(
			Atom{Rel: r, Vars: []string{"A", "B"}},
			Atom{Rel: s, Vars: []string{"B", "C"}},
			Atom{Rel: u, Vars: []string{"B"}},
		)
		if err != nil {
			t.Fatal(err)
		}
		gao, _ := q.RecommendGAO()
		var ref [][]int
		for _, engine := range []Engine{EngineHashPlan, EngineMinesweeper, EngineLeapfrog, EngineNPRR, EngineYannakakis} {
			res, err := Execute(q, &Options{Engine: engine, GAO: gao, Debug: true})
			if err != nil {
				t.Fatalf("engine %v: %v", engine, err)
			}
			if ref == nil {
				ref = res.Tuples
				continue
			}
			if !reflect.DeepEqual(res.Tuples, ref) {
				t.Fatalf("trial %d: engine %v diverges:\n%v\nvs\n%v", trial, engine, res.Tuples, ref)
			}
		}
	}
}

func TestExecuteAuto(t *testing.T) {
	r := rel(t, "R", 2, [][]int{{1, 2}, {2, 3}})
	s := rel(t, "S", 2, [][]int{{2, 5}, {3, 7}})
	q, _ := NewQuery(
		Atom{Rel: r, Vars: []string{"A", "B"}},
		Atom{Rel: s, Vars: []string{"B", "C"}},
	)
	res, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
	if res.Stats.FindGaps == 0 {
		t.Fatal("stats empty")
	}
	if len(res.Vars) != 3 || len(res.GAO) != 3 {
		t.Fatalf("vars = %v", res.Vars)
	}
	// Tuples must come back over the GAO: remap to (A,B,C) and check.
	pos := map[string]int{}
	for i, v := range res.Vars {
		pos[v] = i
	}
	for _, tup := range res.Tuples {
		a, b, c := tup[pos["A"]], tup[pos["B"]], tup[pos["C"]]
		if !((a == 1 && b == 2 && c == 5) || (a == 2 && b == 3 && c == 7)) {
			t.Fatalf("unexpected tuple A=%d B=%d C=%d", a, b, c)
		}
	}
}

func TestExecuteYannakakisRejectsCyclic(t *testing.T) {
	r := rel(t, "R", 2, nil)
	q, _ := NewQuery(
		Atom{Rel: r, Vars: []string{"A", "B"}},
		Atom{Rel: r, Vars: []string{"B", "C"}},
		Atom{Rel: r, Vars: []string{"A", "C"}},
	)
	if _, err := Execute(q, &Options{Engine: EngineYannakakis}); err == nil {
		t.Fatal("Yannakakis on cyclic query must error")
	}
}

func TestExecuteBadGAO(t *testing.T) {
	r := rel(t, "R", 2, nil)
	q, _ := NewQuery(Atom{Rel: r, Vars: []string{"A", "B"}})
	if _, err := Execute(q, &Options{GAO: []string{"A"}}); err == nil {
		t.Fatal("short GAO must error")
	}
	if _, err := Execute(q, &Options{GAO: []string{"A", "X"}}); err == nil {
		t.Fatal("wrong GAO must error")
	}
}

func TestIntersectAPI(t *testing.T) {
	out, stats, err := Intersect([]int{1, 3, 5}, []int{3, 5, 9}, []int{5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int{3, 5}) {
		t.Fatalf("out = %v", out)
	}
	if stats.CertificateEstimate() == 0 {
		t.Fatal("no FindGaps counted")
	}
}

func TestBowtieAPI(t *testing.T) {
	out, _, err := BowtieJoin([]int{1, 2}, [][]int{{1, 5}, {2, 6}, {3, 5}}, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, [][]int{{1, 5}}) {
		t.Fatalf("out = %v", out)
	}
}

func TestTriangleAPI(t *testing.T) {
	edges := [][]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}}
	out, _, err := ListTriangles(edges)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("got %d ordered triangles, want 6", len(out))
	}
}

func TestEngineString(t *testing.T) {
	for e, want := range map[Engine]string{
		EngineAuto: "auto", EngineMinesweeper: "minesweeper", EngineLeapfrog: "leapfrog",
		EngineNPRR: "nprr", EngineYannakakis: "yannakakis", EngineHashPlan: "hashplan",
		Engine(42): "engine(42)",
	} {
		if got := e.String(); got != want {
			t.Fatalf("Engine(%d).String() = %q", int(e), got)
		}
	}
}

func TestSelfJoinThroughAPI(t *testing.T) {
	edges := rel(t, "E", 2, [][]int{{1, 2}, {2, 3}, {1, 3}})
	q, _ := NewQuery(
		Atom{Rel: edges, Vars: []string{"A", "B"}},
		Atom{Rel: edges, Vars: []string{"B", "C"}},
	)
	res, err := Execute(q, &Options{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	// Paths of length 2: 1→2→3.
	pos := map[string]int{}
	for i, v := range res.Vars {
		pos[v] = i
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("tuples = %v over %v", res.Tuples, res.Vars)
	}
	tup := res.Tuples[0]
	if tup[pos["A"]] != 1 || tup[pos["B"]] != 2 || tup[pos["C"]] != 3 {
		t.Fatalf("tuple = %v over %v", tup, res.Vars)
	}
}

func TestListTrianglesParallelAPI(t *testing.T) {
	edges := [][]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}, {2, 3}, {3, 2}}
	seq, _, err := ListTriangles(edges)
	if err != nil {
		t.Fatal(err)
	}
	par, stats, err := ListTrianglesParallel(edges, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("parallel %v vs sequential %v", par, seq)
	}
	if stats.FindGaps == 0 {
		t.Fatal("stats not merged")
	}
}

func TestExecuteParallelWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var tuples [][]int
	for i := 0; i < 200; i++ {
		tuples = append(tuples, []int{rng.Intn(30), rng.Intn(30)})
	}
	e := rel(t, "E", 2, tuples)
	q, err := NewQuery(
		Atom{Rel: e, Vars: []string{"A", "B"}},
		Atom{Rel: e, Vars: []string{"B", "C"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	gao := []string{"A", "B", "C"}
	seq, err := Execute(q, &Options{GAO: gao})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Execute(q, &Options{GAO: gao, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Tuples, seq.Tuples) {
		t.Fatalf("parallel (%d tuples) != sequential (%d tuples)", len(par.Tuples), len(seq.Tuples))
	}
	if par.Stats.FindGaps == 0 {
		t.Fatal("parallel stats not merged")
	}
}

func TestExecuteLimit(t *testing.T) {
	var tuples [][]int
	for i := 0; i < 100; i++ {
		tuples = append(tuples, []int{i, i + 1})
	}
	e := rel(t, "E", 2, tuples)
	q, err := NewQuery(
		Atom{Rel: e, Vars: []string{"A", "B"}},
		Atom{Rel: e, Vars: []string{"B", "C"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Execute(q, &Options{GAO: []string{"A", "B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Tuples) != 99 {
		t.Fatalf("full join = %d tuples", len(full.Tuples))
	}
	lim, err := ExecuteLimit(q, &Options{GAO: []string{"A", "B", "C"}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.Tuples) != 5 {
		t.Fatalf("limited join = %d tuples", len(lim.Tuples))
	}
	// Early stop must do much less work than the full run.
	if lim.Stats.ProbePoints*4 > full.Stats.ProbePoints {
		t.Fatalf("limit probes %d vs full %d: no early-exit saving",
			lim.Stats.ProbePoints, full.Stats.ProbePoints)
	}
	// Every limited tuple is in the full result.
	set := map[string]bool{}
	for _, tup := range full.Tuples {
		set[fmt.Sprint(tup)] = true
	}
	for _, tup := range lim.Tuples {
		if !set[fmt.Sprint(tup)] {
			t.Fatalf("limited tuple %v not in full result", tup)
		}
	}
	// Degenerate limits.
	zero, err := ExecuteLimit(q, nil, 0)
	if err != nil || len(zero.Tuples) != 0 {
		t.Fatalf("limit 0: %v %v", zero.Tuples, err)
	}
	huge, err := ExecuteLimit(q, &Options{GAO: []string{"A", "B", "C"}}, 1<<30)
	if err != nil || len(huge.Tuples) != 99 {
		t.Fatalf("huge limit: %d tuples, %v", len(huge.Tuples), err)
	}
}

func TestQueryTreewidth(t *testing.T) {
	r := rel(t, "R", 2, nil)
	tri, _ := NewQuery(
		Atom{Rel: r, Vars: []string{"A", "B"}},
		Atom{Rel: r, Vars: []string{"B", "C"}},
		Atom{Rel: r, Vars: []string{"A", "C"}},
	)
	if w, err := tri.Treewidth(); err != nil || w != 2 {
		t.Fatalf("triangle treewidth = %d, %v", w, err)
	}
	path, _ := NewQuery(
		Atom{Rel: r, Vars: []string{"A", "B"}},
		Atom{Rel: r, Vars: []string{"B", "C"}},
	)
	if w, err := path.Treewidth(); err != nil || w != 1 {
		t.Fatalf("path treewidth = %d, %v", w, err)
	}
}

func TestFullCertificateAPI(t *testing.T) {
	r := rel(t, "R", 1, [][]int{{1}, {4}, {7}})
	s := rel(t, "S", 2, [][]int{{1, 5}, {4, 2}})
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"A"}},
		Atom{Rel: s, Vars: []string{"A", "B"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := FullCertificate(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := r.Len() + 2*s.Len()
	if cert.Size() == 0 || cert.Size() > 2*n {
		t.Fatalf("|C| = %d out of range (N-ish = %d)", cert.Size(), n)
	}
	if len(cert.Comparisons()) != cert.Size() {
		t.Fatal("Comparisons length mismatch")
	}
	if cert.String() == "" {
		t.Fatal("empty String")
	}
	// Identity and order-preserving transforms satisfy; order-breaking not.
	for _, tc := range []struct {
		name string
		fn   func(int) int
		want bool
	}{
		{"identity", nil, true},
		{"affine", func(v int) int { return 3*v + 2 }, true},
		{"negate", func(v int) int { return 1000 - v }, false},
	} {
		got, err := cert.SatisfiedByTransform(tc.fn)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: satisfied = %v, want %v", tc.name, got, tc.want)
		}
	}
}

package planner

import (
	"math"
	"sort"
	"strings"

	"minesweeper/internal/hypergraph"
)

// Atom is one query atom as the planner sees it: its attribute names
// (real join variables only — constant columns are selections, not
// order choices) with the per-column statistics of the bound relation.
type Atom struct {
	Attrs []string
	Rows  int
	Cols  []ColStat // parallel to Attrs
}

// Plan is the planner's verdict: the chosen order, its elimination
// width, the model's estimated cost, whether the data changed the
// choice away from the structural default, and how many candidate
// orders were costed.
type Plan struct {
	GAO        []string
	Width      int
	Cost       float64
	Planned    bool // true when the cost model overrode the structural order
	Considered int
}

// Config tunes the search. The zero value uses DefaultBeam.
type Config struct {
	// Beam bounds how many partial orders survive each expansion step
	// (and how many complete candidates are costed per strategy).
	Beam int
}

// DefaultBeam is wide enough to cover every order of small queries
// while keeping planning O(beam · n² · m) for large ones — past the
// 9-variable wall where exhaustive width search gives up.
const DefaultBeam = 8

// structuralMargin is the relative cost slack within which the
// structural order is kept even when a beam candidate models slightly
// cheaper: estimates that close are noise, and keeping the structural
// default makes plans stable under small data perturbations.
const structuralMargin = 1.01

// edges renders the atoms' attribute lists for hypergraph construction.
func edges(atoms []Atom) [][]string {
	out := make([][]string, len(atoms))
	for i, a := range atoms {
		out[i] = a.Attrs
	}
	return out
}

// Structural returns the purely structural order — a nested elimination
// order when one exists (the β-acyclic Õ(|C|+Z) regime), otherwise the
// greedy min-width order — exactly the pre-planner RecommendGAO choice.
func Structural(atoms []Atom) (gao []string, width int) {
	h := hypergraph.New(edges(atoms))
	if neo, ok := h.NestedEliminationOrder(); ok {
		w, err := h.EliminationWidth(neo)
		if err != nil {
			panic(err) // unreachable: neo permutes the hypergraph vertices
		}
		return neo, w
	}
	return h.GreedyWidthOrder()
}

// Choose runs the data-aware search: it enumerates
// elimination-width-feasible candidate orders (the structural default,
// data-guided nested elimination orders for β-acyclic queries, and a
// forward cost-driven beam for cyclic ones), costs each with the
// cardinality model, and picks the cheapest order of minimal width —
// preferring the structural order on near-ties and breaking exact ties
// lexicographically, so the plan is deterministic.
func Choose(atoms []Atom, cfg Config) Plan {
	beam := cfg.Beam
	if beam <= 0 {
		beam = DefaultBeam
	}
	h := hypergraph.New(edges(atoms))
	structural, _ := Structural(atoms)

	seen := map[string]bool{}
	var cands [][]string
	add := func(order []string) {
		key := strings.Join(order, "\x00")
		if !seen[key] {
			seen[key] = true
			cands = append(cands, order)
		}
	}
	add(structural)
	if _, ok := h.NestedEliminationOrder(); ok {
		for _, o := range nestedBeam(h, atoms, beam) {
			add(o)
		}
	} else {
		for _, o := range forwardBeam(h, atoms, beam) {
			add(o)
		}
	}

	type scored struct {
		order []string
		width int
		cost  float64
	}
	all := make([]scored, 0, len(cands))
	minW := math.MaxInt
	for _, o := range cands {
		w, err := h.EliminationWidth(o)
		if err != nil {
			continue // candidate missed an attribute: not a full order
		}
		all = append(all, scored{order: o, width: w, cost: CostOf(atoms, o)})
		if w < minW {
			minW = w
		}
	}
	best := scored{cost: math.Inf(1)}
	var structuralPick *scored
	for i := range all {
		s := &all[i]
		if s.width != minW {
			continue // width dominates cost: the bound is |C|^{w+1}
		}
		if lexKey(s.order) == lexKey(structural) {
			structuralPick = s
		}
		if s.cost < best.cost || (s.cost == best.cost && lexKey(s.order) < lexKey(best.order)) {
			best = *s
		}
	}
	planned := true
	if structuralPick != nil && structuralPick.cost <= best.cost*structuralMargin {
		best = *structuralPick
		planned = false
	}
	return Plan{GAO: best.order, Width: best.width, Cost: best.cost, Planned: planned, Considered: len(all)}
}

func lexKey(order []string) string { return strings.Join(order, "\x00") }

// nestedBeam enumerates nested elimination orders by beam search over
// the back-to-front nest-point extraction of Proposition A.6: at each
// step every current nest point is a legal extraction, and the beam
// keeps the states that push expensive-to-lead attributes latest (an
// attribute with a small candidate count belongs at the front of the
// GAO, where it prunes every deeper level). Only complete orders are
// returned; all of them are nested, so the β-acyclic Õ(|C|+Z) guarantee
// survives whichever one the cost model picks.
func nestedBeam(h *hypergraph.Hypergraph, atoms []Atom, beam int) [][]string {
	type state struct {
		edges    [][]string
		vertices []string
		rev      []string
		score    float64 // cumulative headCost of extracted attrs, earlier-weighted
	}
	head := headCosts(atoms)
	start := state{edges: append([][]string(nil), h.Edges...), vertices: append([]string(nil), h.Vertices...)}
	states := []state{start}
	n := len(h.Vertices)
	for step := 0; step < n; step++ {
		var next []state
		for _, st := range states {
			for i, v := range st.vertices {
				if !isNestPointOf(st.edges, v) {
					continue
				}
				ns := state{
					vertices: make([]string, 0, len(st.vertices)-1),
					rev:      append(append([]string(nil), st.rev...), v),
					// Extracted early = placed late: reward big head costs
					// extracted first (decaying weight keeps it a heuristic,
					// the exact model re-costs complete orders).
					score: st.score + math.Log2(head[v]+1)/float64(step+1),
				}
				ns.vertices = append(ns.vertices, st.vertices[:i]...)
				ns.vertices = append(ns.vertices, st.vertices[i+1:]...)
				ns.edges = make([][]string, len(st.edges))
				for j, e := range st.edges {
					ns.edges[j] = without(e, v)
				}
				next = append(next, ns)
			}
		}
		sort.Slice(next, func(i, j int) bool {
			if next[i].score != next[j].score {
				return next[i].score > next[j].score
			}
			return lexKey(next[i].rev) < lexKey(next[j].rev)
		})
		if len(next) > beam {
			next = next[:beam]
		}
		states = next
	}
	out := make([][]string, 0, len(states))
	for _, st := range states {
		order := make([]string, n)
		for i, v := range st.rev {
			order[n-1-i] = v
		}
		out = append(out, order)
	}
	return out
}

// forwardBeam builds orders front-to-back for cyclic queries, expanding
// each partial order with every attribute connected to it (any
// attribute when none is placed yet) and keeping the beam cheapest
// under the incremental cost model.
func forwardBeam(h *hypergraph.Hypergraph, atoms []Atom, beam int) [][]string {
	type state struct {
		order []string
		cost  float64
	}
	n := len(h.Vertices)
	states := []state{{}}
	for step := 0; step < n; step++ {
		var next []state
		for _, st := range states {
			placed := map[string]bool{}
			for _, v := range st.order {
				placed[v] = true
			}
			for _, v := range h.Vertices {
				if placed[v] || !(len(st.order) == 0 || connected(atoms, placed, v) || fullyDisconnected(atoms, placed)) {
					continue
				}
				order := append(append([]string(nil), st.order...), v)
				next = append(next, state{order: order, cost: CostOf(atoms, order)})
			}
		}
		sort.Slice(next, func(i, j int) bool {
			if next[i].cost != next[j].cost {
				return next[i].cost < next[j].cost
			}
			return lexKey(next[i].order) < lexKey(next[j].order)
		})
		if len(next) > beam {
			next = next[:beam]
		}
		states = next
	}
	out := make([][]string, 0, len(states))
	for _, st := range states {
		out = append(out, st.order)
	}
	return out
}

// connected reports whether v shares an atom with a placed attribute.
func connected(atoms []Atom, placed map[string]bool, v string) bool {
	for i := range atoms {
		has, joins := false, false
		for _, a := range atoms[i].Attrs {
			if a == v {
				has = true
			} else if placed[a] {
				joins = true
			}
		}
		if has && joins {
			return true
		}
	}
	return false
}

// fullyDisconnected reports whether no unplaced attribute connects to
// the placed set (a cross-product boundary), in which case any
// attribute may extend the order.
func fullyDisconnected(atoms []Atom, placed map[string]bool) bool {
	for i := range atoms {
		for _, a := range atoms[i].Attrs {
			if !placed[a] && connected(atoms, placed, a) {
				return false
			}
		}
	}
	return true
}

// headCosts estimates, per attribute, the candidate count it would
// contribute as the leading GAO attribute: the smallest distinct count
// over the atoms binding it.
func headCosts(atoms []Atom) map[string]float64 {
	out := map[string]float64{}
	for i := range atoms {
		for j, a := range atoms[i].Attrs {
			d := float64(atoms[i].Cols[j].Distinct)
			if d < 1 {
				d = 1
			}
			if cur, ok := out[a]; !ok || d < cur {
				out[a] = d
			}
		}
	}
	return out
}

func without(edge []string, v string) []string {
	out := make([]string, 0, len(edge))
	for _, u := range edge {
		if u != v {
			out = append(out, u)
		}
	}
	return out
}

// isNestPointOf reports whether the edges containing v form a ⊆-chain.
func isNestPointOf(edges [][]string, v string) bool {
	var incident [][]string
	for _, e := range edges {
		for _, u := range e {
			if u == v {
				incident = append(incident, e)
				break
			}
		}
	}
	sort.Slice(incident, func(i, j int) bool { return len(incident[i]) < len(incident[j]) })
	for i := 1; i < len(incident); i++ {
		if !subsetOf(incident[i-1], incident[i]) {
			return false
		}
	}
	return true
}

func subsetOf(a, b []string) bool {
	for _, v := range a {
		found := false
		for _, u := range b {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// CostOf runs the forward cardinality model over a complete (or
// partial) order: walking the order left to right it tracks the
// estimated number of partial bindings, multiplying in each step's
// candidate count — the minimum, over the atoms binding the attribute,
// of the estimated per-binding fanout — and charges each step the
// running size times the index-probe cost of the participating atoms.
//
// The fanout of attribute v in atom a, given the atom's already-placed
// attributes, blends the independence estimate rows/∏distinct(placed)
// with the skew sketch (the max-frequency of the most selective placed
// column): the geometric mean of the average and the worst case, capped
// by v's distinct count. The model is a heuristic — it decides order
// preference, not correctness — and is deterministic in its inputs.
func CostOf(atoms []Atom, gao []string) float64 {
	placed := make(map[string]bool, len(gao))
	est := 1.0
	cost := 0.0
	for _, v := range gao {
		cand := math.Inf(1)
		probe := 1.0
		for i := range atoms {
			a := &atoms[i]
			ci := -1
			for j, attr := range a.Attrs {
				if attr == v {
					ci = j
					break
				}
			}
			if ci < 0 {
				continue
			}
			f := fanout(a, ci, placed)
			if f < cand {
				cand = f
			}
			probe += math.Log2(float64(a.Rows) + 2)
		}
		if math.IsInf(cand, 1) {
			cand = 1
		}
		est *= cand
		cost += est * probe
		placed[v] = true
	}
	return cost
}

// fanout estimates the distinct v-values per binding of the atom's
// placed attributes.
func fanout(a *Atom, ci int, placed map[string]bool) float64 {
	d := float64(a.Cols[ci].Distinct)
	if d < 1 {
		d = 1
	}
	rows := float64(a.Rows)
	if rows < 1 {
		rows = 1
	}
	prod := 1.0
	worst := rows
	anyPlaced := false
	for j, attr := range a.Attrs {
		if j == ci || !placed[attr] {
			continue
		}
		anyPlaced = true
		pd := float64(a.Cols[j].Distinct)
		if pd < 1 {
			pd = 1
		}
		prod *= pd
		mf := float64(a.Cols[j].MaxFreq)
		if mf < 1 {
			mf = 1
		}
		if mf < worst {
			worst = mf
		}
	}
	if !anyPlaced {
		return d
	}
	avg := rows / prod
	if avg < 1 {
		avg = 1
	}
	f := math.Sqrt(avg * worst)
	if f < 1 {
		f = 1
	}
	if f > d {
		f = d
	}
	return f
}

package storage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"strconv"
	"strings"
)

// WAL framing. Each record is a header line followed by zero or more
// payload lines:
//
//	#!ms <op> <name> <epoch> <npayload> <crc32>
//	<payload line 1>
//	…
//
// The name is URL-path-escaped (never empty). npayload counts the
// payload lines; the CRC32 (IEEE, hex) covers the header fields after
// "#!ms" up to and excluding the CRC itself, plus every payload line,
// newlines included — a flipped bit anywhere in the record fails the
// check. Payload lines are relio-compatible: tuples are space-separated
// non-negative integers exactly as relio writes them, variable bindings
// are space-separated fields (escaped like the name), and a query
// definition is one JSON object. Framing lines start with "#", so a
// plain relio reader treats a WAL or snapshot as comments plus tuple
// data. Blank lines and "#" comments that are not "#!ms" headers are
// skipped between records.
//
// Per-op payloads:
//
//	create    vars line, then the initial tuples
//	replace   vars line, then the replacement tuples
//	insert    tuple lines
//	delete    tuple lines
//	drop      none
//	putquery  one JSON line
//	dropquery none
const recMagic = "#!ms"

// appendInt appends the decimal rendering of v.
func appendInt(b []byte, v int) []byte {
	return strconv.AppendInt(b, int64(v), 10)
}

// encodeRecord appends the framed record to buf and returns it.
func encodeRecord(buf []byte, rec *Record) ([]byte, error) {
	opName, ok := opNames[rec.Op]
	if !ok {
		return nil, fmt.Errorf("storage: encode: unknown op %d", rec.Op)
	}
	if rec.Name == "" {
		return nil, fmt.Errorf("storage: encode: %s record without a name", opName)
	}
	var payload []byte
	addLine := func(line []byte) {
		payload = append(payload, line...)
		payload = append(payload, '\n')
	}
	nPayload := 0
	switch rec.Op {
	case OpCreate, OpReplace:
		if len(rec.Vars) == 0 {
			return nil, fmt.Errorf("storage: encode: %s record for %q without vars", opName, rec.Name)
		}
		esc := make([]string, len(rec.Vars))
		for i, v := range rec.Vars {
			esc[i] = url.PathEscape(v)
		}
		addLine([]byte(strings.Join(esc, " ")))
		nPayload = 1 + len(rec.Tuples)
	case OpInsert, OpDelete:
		nPayload = len(rec.Tuples)
	case OpPutQuery:
		if rec.Query == nil {
			return nil, fmt.Errorf("storage: encode: putquery record for %q without a definition", rec.Name)
		}
		js, err := json.Marshal(rec.Query)
		if err != nil {
			return nil, fmt.Errorf("storage: encode query %q: %w", rec.Name, err)
		}
		addLine(js)
		nPayload = 1
	case OpDrop, OpDropQuery:
		if len(rec.Tuples) != 0 {
			return nil, fmt.Errorf("storage: encode: %s record for %q carries tuples", opName, rec.Name)
		}
	}
	switch rec.Op {
	case OpCreate, OpReplace, OpInsert, OpDelete:
		line := make([]byte, 0, 32)
		for _, tup := range rec.Tuples {
			line = line[:0]
			for i, v := range tup {
				if v < 0 {
					return nil, fmt.Errorf("storage: encode: %s record for %q has negative value %d", opName, rec.Name, v)
				}
				if i > 0 {
					line = append(line, ' ')
				}
				line = appendInt(line, v)
			}
			addLine(line)
		}
	}

	// CRC covers "<op> <name> <epoch> <npayload>\n" + payload.
	head := fmt.Sprintf("%s %s %d %d", opName, url.PathEscape(rec.Name), rec.Epoch, nPayload)
	crc := crc32.NewIEEE()
	io.WriteString(crc, head)
	crc.Write([]byte{'\n'})
	crc.Write(payload)

	buf = append(buf, recMagic...)
	buf = append(buf, ' ')
	buf = append(buf, head...)
	buf = append(buf, ' ')
	buf = appendCRC(buf, crc.Sum32())
	buf = append(buf, '\n')
	return append(buf, payload...), nil
}

func appendCRC(b []byte, crc uint32) []byte {
	return fmt.Appendf(b, "%08x", crc)
}

// recordError is a CRC or framing error at a known position in the
// stream. Recovery treats one at the tail of the WAL as a torn write
// and truncates; anywhere else it is corruption and fatal.
type recordError struct {
	src  string // file name for messages
	line int    // 1-based line number of the offending line
	msg  string
}

func (e *recordError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.src, e.line, e.msg)
}

// recordReader reads framed records from a WAL or snapshot stream,
// tracking byte offsets so a torn tail can be truncated at the last
// record boundary.
type recordReader struct {
	src    string
	r      *bufio.Reader
	off    int64 // bytes consumed so far
	lineNo int   // lines consumed so far
}

func newRecordReader(r io.Reader, src string) *recordReader {
	return &recordReader{src: src, r: bufio.NewReaderSize(r, 64<<10)}
}

// Offset returns the byte offset after the last fully consumed line —
// the truncation point if the next record turns out to be torn.
func (rr *recordReader) Offset() int64 { return rr.off }

// readLine returns the next line without its newline. A final line
// with no terminating newline — a torn write — is reported as
// errUnterminated; io.EOF means a clean end of stream.
var errUnterminated = fmt.Errorf("unterminated line")

func (rr *recordReader) readLine() (string, error) {
	line, err := rr.r.ReadString('\n')
	if err == io.EOF {
		if len(line) > 0 {
			// The torn bytes are NOT counted into off: truncation cuts
			// them away.
			return "", errUnterminated
		}
		return "", io.EOF
	}
	if err != nil {
		return "", err
	}
	rr.off += int64(len(line))
	rr.lineNo++
	return strings.TrimSuffix(line, "\n"), nil
}

func (rr *recordReader) errf(line int, format string, args ...any) *recordError {
	return &recordError{src: rr.src, line: line, msg: fmt.Sprintf(format, args...)}
}

// Read returns the next record. io.EOF signals a clean end of stream;
// errUnterminated a torn final line; a *recordError a framing or CRC
// violation at the reported line. For the latter two, Offset() is the
// last record boundary — the safe truncation point.
func (rr *recordReader) Read() (*Record, error) {
	// Skip blanks and non-record comments between records.
	var header string
	for {
		line, err := rr.readLine()
		if err != nil {
			return nil, err
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, recMagic+" ") {
			header = trimmed
			break
		}
		if strings.HasPrefix(trimmed, "#") {
			continue
		}
		return nil, rr.errf(rr.lineNo, "expected record header, got %q", line)
	}
	headLine := rr.lineNo

	fields := strings.Fields(header)
	// recMagic op name epoch npayload crc
	if len(fields) != 6 {
		return nil, rr.errf(headLine, "record header has %d fields, want 6", len(fields))
	}
	op, ok := opByName[fields[1]]
	if !ok {
		return nil, rr.errf(headLine, "unknown record op %q", fields[1])
	}
	name, err := url.PathUnescape(fields[2])
	if err != nil || name == "" {
		return nil, rr.errf(headLine, "bad record name %q", fields[2])
	}
	epoch, err := strconv.ParseUint(fields[3], 10, 64)
	if err != nil {
		return nil, rr.errf(headLine, "bad record epoch %q", fields[3])
	}
	nPayload, err := strconv.Atoi(fields[4])
	if err != nil || nPayload < 0 {
		return nil, rr.errf(headLine, "bad record payload count %q", fields[4])
	}
	wantCRC, err := strconv.ParseUint(fields[5], 16, 32)
	if err != nil || len(fields[5]) != 8 {
		return nil, rr.errf(headLine, "bad record crc %q", fields[5])
	}

	crc := crc32.NewIEEE()
	fmt.Fprintf(crc, "%s %s %s %s\n", fields[1], fields[2], fields[3], fields[4])

	rec := &Record{Op: op, Name: name, Epoch: epoch}
	payload := make([]string, 0, min(nPayload, 4096))
	for i := 0; i < nPayload; i++ {
		line, err := rr.readLine()
		if err != nil {
			if err == io.EOF {
				return nil, errUnterminated // header promised more payload
			}
			return nil, err
		}
		io.WriteString(crc, line)
		crc.Write([]byte{'\n'})
		payload = append(payload, line)
	}
	if got := crc.Sum32(); got != uint32(wantCRC) {
		return nil, rr.errf(headLine, "crc mismatch: computed %08x, header says %08x", got, uint32(wantCRC))
	}

	// CRC verified; decode the payload.
	tupleLines := payload
	switch op {
	case OpCreate, OpReplace:
		if len(payload) == 0 {
			return nil, rr.errf(headLine, "%s record without a vars line", op)
		}
		for _, f := range strings.Fields(payload[0]) {
			v, err := url.PathUnescape(f)
			if err != nil {
				return nil, rr.errf(headLine+1, "bad variable %q", f)
			}
			rec.Vars = append(rec.Vars, v)
		}
		if len(rec.Vars) == 0 {
			return nil, rr.errf(headLine+1, "%s record with an empty vars line", op)
		}
		tupleLines = payload[1:]
	case OpPutQuery:
		if len(payload) != 1 {
			return nil, rr.errf(headLine, "putquery record with %d payload lines, want 1", len(payload))
		}
		def := &QueryDef{}
		if err := json.Unmarshal([]byte(payload[0]), def); err != nil {
			return nil, rr.errf(headLine+1, "bad query definition: %v", err)
		}
		if def.Name == "" {
			def.Name = name
		}
		rec.Query = def
		return rec, nil
	case OpDrop, OpDropQuery:
		if len(payload) != 0 {
			return nil, rr.errf(headLine, "%s record with %d payload lines, want 0", op, len(payload))
		}
		return rec, nil
	}
	rec.Tuples = make([][]int, 0, len(tupleLines))
	for i, line := range tupleLines {
		fields := strings.Fields(line)
		tup := make([]int, len(fields))
		for j, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil || v < 0 {
				return nil, rr.errf(headLine+1+(len(payload)-len(tupleLines))+i,
					"bad tuple value %q (want non-negative integer)", f)
			}
			tup[j] = v
		}
		rec.Tuples = append(rec.Tuples, tup)
	}
	return rec, nil
}

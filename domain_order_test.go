package minesweeper

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// freqSkewRelations builds a pair whose shared attribute b is dominated
// by one heavy value (half of S) scattered among sparse strided values —
// the regime where the planner's skew sketch marks b for a
// frequency-permuted domain under DomainFreq.
func freqSkewRelations(t *testing.T) (*Relation, *Relation) {
	t.Helper()
	const stride = 9973
	const heavy = 321 * stride
	var sT [][]int
	for i := 0; i < 400; i++ {
		b := i * stride
		if i%2 == 0 {
			b = heavy
		}
		sT = append(sT, []int{b, i * stride})
	}
	var rT [][]int
	for j := 0; j < 30; j++ {
		b := (j*31 + 5) * stride
		if j%5 == 0 {
			b = heavy // join the heavy value
		}
		if j%7 == 0 {
			b = (j * 2) * stride // some light matches too
		}
		rT = append(rT, []int{j * stride, b})
	}
	return rel(t, "R", 2, rT), rel(t, "S", 2, sT)
}

func freqSkewQuery(t *testing.T) *Query {
	t.Helper()
	r, s := freqSkewRelations(t)
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"a", "b"}},
		Atom{Rel: s, Vars: []string{"b", "c"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// hasOrder reports whether the DictOrders list carries the given entry.
func hasOrder(orders []string, entry string) bool {
	for _, o := range orders {
		if o == entry {
			return true
		}
	}
	return false
}

// TestFreqDomainExplainReportsOrders: the plan reports, per encoded
// attribute, the domain ordering its code space follows — rank by
// default, freq for skew-qualified attributes under DomainFreq, and
// rank again when a pushed-down bound pins the position (a permuted
// code space would forfeit the pushdown).
func TestFreqDomainExplainReportsOrders(t *testing.T) {
	q := freqSkewQuery(t)

	ex, err := q.Explain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.DictAttrs) == 0 {
		t.Fatalf("skewed fixture must dictionary-encode something: %+v", ex)
	}
	if len(ex.DictOrders) != len(ex.DictAttrs) {
		t.Fatalf("DictOrders %v must parallel DictAttrs %v", ex.DictOrders, ex.DictAttrs)
	}
	for _, o := range ex.DictOrders {
		if !strings.HasSuffix(o, ":rank") {
			t.Fatalf("natural domain must report rank orders only: %v", ex.DictOrders)
		}
	}

	fex, err := q.Explain(&Options{Domain: DomainFreq})
	if err != nil {
		t.Fatal(err)
	}
	if !hasOrder(fex.DictOrders, "b:freq") {
		t.Fatalf("DomainFreq must permute the skewed attribute b: %v", fex.DictOrders)
	}

	// A range bound on b keeps its dictionary order-preserving so the
	// bound still pushes down into code space.
	bex, err := q.Explain(&Options{Domain: DomainFreq, Where: []Filter{{Var: "b", Op: "<", Value: 400 * 9973}}})
	if err != nil {
		t.Fatal(err)
	}
	if hasOrder(bex.DictOrders, "b:freq") {
		t.Fatalf("bounded attribute must not be frequency-permuted: %v", bex.DictOrders)
	}

	// The prepared query's Explain agrees with the planning-only one.
	pq, err := q.Prepare(&Options{Domain: DomainFreq})
	if err != nil {
		t.Fatal(err)
	}
	pex := pq.Explain()
	if !reflect.DeepEqual(pex.DictOrders, fex.DictOrders) {
		t.Fatalf("prepared DictOrders %v != planned %v", pex.DictOrders, fex.DictOrders)
	}
}

// TestFreqDomainUniformStaysRank: without skew the frequency permutation
// must never kick in, even when explicitly requested — uniform columns
// gain nothing and would lose the order-preserving contract for free.
func TestFreqDomainUniformStaysRank(t *testing.T) {
	const stride = 9973
	var rT, sT [][]int
	for i := 0; i < 200; i++ {
		rT = append(rT, []int{i * stride, i * stride})
		sT = append(sT, []int{i * stride, (i + 1) * stride})
	}
	r := rel(t, "R", 2, rT)
	s := rel(t, "S", 2, sT)
	q, err := NewQuery(
		Atom{Rel: r, Vars: []string{"a", "b"}},
		Atom{Rel: s, Vars: []string{"b", "c"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := q.Explain(&Options{Domain: DomainFreq})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range ex.DictOrders {
		if strings.HasSuffix(o, ":freq") {
			t.Fatalf("uniform fixture must not be frequency-permuted: %v", ex.DictOrders)
		}
	}
}

// TestFreqDomainEquivalence: under DomainFreq every engine and worker
// count produces the identical tuple stream (the permuted domain is one
// deterministic total order shared through the encoded indexes), and the
// result SET matches the natural-order run exactly.
func TestFreqDomainEquivalence(t *testing.T) {
	q := freqSkewQuery(t)
	natural, err := Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(natural.Tuples) == 0 {
		t.Fatal("fixture join must be non-empty")
	}

	var ref *Result
	for _, eng := range allEngines {
		for _, workers := range []int{1, 4} {
			if workers > 1 && eng != EngineMinesweeper {
				continue
			}
			res, err := Execute(q, &Options{Engine: eng, Workers: workers, Domain: DomainFreq})
			if err != nil {
				t.Fatalf("engine=%v workers=%d: %v", eng, workers, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res.Tuples, ref.Tuples) {
				t.Fatalf("engine=%v workers=%d: freq-domain tuples diverge (first diff %v)",
					eng, workers, firstDiff(res.Tuples, ref.Tuples))
			}
		}
	}

	sortTuples := func(in [][]int) [][]int {
		out := append([][]int(nil), in...)
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			for k := range a {
				if a[k] != b[k] {
					return a[k] < b[k]
				}
			}
			return false
		})
		return out
	}
	if !reflect.DeepEqual(sortTuples(ref.Tuples), sortTuples(natural.Tuples)) {
		t.Fatalf("freq-domain result set diverges from natural: %d vs %d tuples",
			len(ref.Tuples), len(natural.Tuples))
	}
}

// TestFreqDomainPreparedSurvivesMutation: a prepared DomainFreq query
// re-plans across mutations like any other — the frequency dictionaries
// are rebuilt from fresh counts and results stay correct.
func TestFreqDomainPreparedSurvivesMutation(t *testing.T) {
	q := freqSkewQuery(t)
	pq, err := q.Prepare(&Options{Domain: DomainFreq})
	if err != nil {
		t.Fatal(err)
	}
	before, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	rels := q.Relations()
	// A fresh (a, b) pair joining a fresh (b, c) pair: exactly one new
	// output tuple.
	const stride = 9973
	if err := rels[0].(*Relation).Insert([]int{999 * stride, 777 * stride}); err != nil {
		t.Fatal(err)
	}
	if err := rels[1].(*Relation).Insert([]int{777 * stride, 888 * stride}); err != nil {
		t.Fatal(err)
	}
	after, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Tuples) != len(before.Tuples)+1 {
		t.Fatalf("post-mutation result has %d tuples, want %d", len(after.Tuples), len(before.Tuples)+1)
	}
}
